(** E11 (ablation) — failure-detector aggressiveness.

    The paper leans on the GCS assumption that "while the network is
    fairly stable, and process failures can be consistently detected,
    such agreement can be reached".  The knob behind that assumption is
    the suspicion timeout: crash takeover latency is detection-bound
    (E5), so shortening the timeout speeds recovery — but on a lossy
    network an aggressive detector falsely suspects live peers, causing
    spurious view changes (churn) that each cost a flush round and a
    reassignment.

    We sweep the (heartbeat, suspicion) pair over a 5%-lossy LAN with
    periodic primary kills, and measure takeover latency, total view
    changes and client availability: the sweet spot in the middle is the
    design tradeoff this repository's default (100 ms / 350 ms)
    encodes. *)

module R = Runner.Make (Haf_services.Synthetic)
open Common

let id = "e11"

let title = "E11 (ablation): failure-detector timeout vs recovery speed and churn"

let run ~quick =
  let table =
    Table.create ~title
      ~columns:
        [
          ("network", Table.Left);
          ("heartbeat", Table.Right);
          ("suspect timeout", Table.Right);
          ("takeover latency", Table.Right);
          ("view changes", Table.Right);
          ("availability", Table.Right);
        ]
      ()
  in
  let duration = if quick then 90. else 200. in
  List.iter
    (fun (net_name, net_config, hb, suspect) ->
      let lats, churn, avail, runs =
        List.fold_left
          (fun (ls, vc, av, n) seed ->
            let sc =
              {
                Scenario.default with
                seed;
                n_servers = 4;
                n_units = 1;
                replication = 4;
                n_clients = 3;
                request_interval = 0.;
                session_duration = duration +. 30.;
                duration;
                net_config;
                gcs_config =
                  {
                    Haf_gcs.Config.default with
                    heartbeat_interval = hb;
                    suspect_timeout = suspect;
                  };
              }
            in
            let tl, w =
              R.run_scenario sc ~prepare:(fun w ->
                  R.schedule_primary_kills w ~every:25. ~repair:8. ~start:12. ())
            in
            ( ls @ Metrics.takeover_latencies tl,
              vc + Haf_gcs.Gcs.total_view_changes w.R.gcs,
              av +. mean_availability tl ~until:duration,
              n + 1 ))
          ([], 0, 0., 0)
          (seeds ~quick ~base:1100)
      in
      let lat = Summary.of_list lats in
      Table.add_row table
        [
          net_name;
          Printf.sprintf "%gms" (1000. *. hb);
          Printf.sprintf "%gms" (1000. *. suspect);
          Printf.sprintf "%.3fs" lat.Summary.mean;
          Table.fint (churn / Int.max 1 runs);
          Table.fpct (avail /. float_of_int (Int.max 1 runs));
        ])
    (let lan = { Haf_net.Network.default_config with drop_probability = 0.05 } in
     let wan =
       {
         Haf_net.Network.default_config with
         latency = Haf_net.Latency.wan;
         drop_probability = 0.05;
       }
     in
     [
       ("lan", lan, 0.05, 0.12);
       ("lan", lan, 0.1, 0.35);
       ("lan", lan, 0.1, 0.8);
       ("lan", lan, 0.1, 2.0);
       (* WAN rows: the detection cost now includes the ~50 ms one-way
          path, and operators typically scale timeouts with the RTT —
          the second row is a WAN-typical setting. *)
       ("wan", wan, 0.1, 0.35);
       ("wan", wan, 0.5, 1.5);
     ]);
  [ table ]
