(** E7 — Uncertain-response policies: duplicate vs. drop, by frame class.

    Paper claim (Section 4): "For these uncertain responses, there is a
    clear choice for the new primary ... it can either transmit the
    response (risking the client seeing a duplicate) or it can not
    transmit (risking that the client never sees the response).  The
    choice is application specific.  For example, for MPEG-encoded video,
    one would favor duplicate delivery for full image (I) frames over the
    risk of losing them, but would risk missing some incremental (P or B)
    frames."

    VoD with the GOP frame pattern; periodic primary kills; three
    policies: Resume (transmit everything), Skip-ahead (transmit
    nothing), Hybrid (the MPEG choice: retransmit only I-frames). *)

module R = Runner.Make (Haf_services.Vod)
open Common

let id = "e7"

let title = "E7: takeover policy vs duplicate/missing frames by class (Sec. 4, MPEG)"

let run ~quick =
  let table =
    Table.create ~title
      ~columns:
        [
          ("policy", Table.Left);
          ("dup I-frames", Table.Right);
          ("dup P/B-frames", Table.Right);
          ("missing I-frames", Table.Right);
          ("missing P/B-frames", Table.Right);
        ]
      ()
  in
  let duration = if quick then 90. else 160. in
  List.iter
    (fun (label, takeover) ->
      let dup_i, dup_pb, miss_i, miss_pb =
        List.fold_left
          (fun (di, dp, mi, mp) seed ->
            let sc =
              {
                Scenario.default with
                seed;
                n_servers = 4;
                n_units = 1;
                replication = 4;
                n_clients = 2;
                request_interval = 0.;
                session_duration = duration +. 30.;
                duration;
                policy = { Policy.vod_paper with takeover };
              }
            in
            let tl, _ =
              R.run_scenario sc ~prepare:(fun w ->
                  R.schedule_primary_kills w ~every:20. ~repair:5. ~start:15. ())
            in
            let dup_all = total_duplicates tl in
            let dup_crit = total_duplicates ~critical:true tl in
            let miss_all = total_missing tl in
            let miss_crit = total_missing ~critical:true tl in
            ( di + dup_crit,
              dp + (dup_all - dup_crit),
              mi + miss_crit,
              mp + (miss_all - miss_crit) ))
          (0, 0, 0, 0)
          (seeds ~quick ~base:700)
      in
      Table.add_row table
        [
          label;
          Table.fint dup_i;
          Table.fint dup_pb;
          Table.fint miss_i;
          Table.fint miss_pb;
        ])
    [
      ("resume (duplicate everything)", Policy.Resume);
      ("skip-ahead (drop everything)", Policy.Skip_ahead);
      ("hybrid (duplicate I, drop P/B)", Policy.Hybrid);
    ];
  [ table ]
