lib/experiments/registry.mli: Haf_stats
