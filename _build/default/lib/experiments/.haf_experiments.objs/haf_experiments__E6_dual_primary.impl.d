lib/experiments/e6_dual_primary.ml: Common Haf_gcs Haf_services Haf_sim List Metrics Policy Printf Runner Scenario Table
