lib/experiments/e13_manager.ml: Common Haf_core Haf_gcs Haf_services List Policy Runner Scenario Summary Table
