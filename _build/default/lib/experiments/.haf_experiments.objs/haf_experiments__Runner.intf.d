lib/experiments/runner.mli: Haf_core Haf_gcs Haf_net Haf_sim Haf_stats Scenario
