lib/experiments/e12_scale.ml: Common Events Haf_net Haf_services List Metrics Policy Printf Runner Scenario Summary Table
