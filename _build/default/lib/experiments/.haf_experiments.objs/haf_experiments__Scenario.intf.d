lib/experiments/scenario.mli: Format Haf_core Haf_gcs Haf_net
