lib/experiments/common.ml: Haf_core Haf_stats List
