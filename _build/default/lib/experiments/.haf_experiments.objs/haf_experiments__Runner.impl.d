lib/experiments/runner.ml: Haf_core Haf_gcs Haf_net Haf_sim List Option Scenario
