lib/experiments/e7_policy.ml: Common Haf_services List Policy Runner Scenario Table
