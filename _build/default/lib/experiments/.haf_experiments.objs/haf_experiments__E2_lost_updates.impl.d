lib/experiments/e2_lost_updates.ml: Common Haf_services List Policy Printf Runner Scenario Table
