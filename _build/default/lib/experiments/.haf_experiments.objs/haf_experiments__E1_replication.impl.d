lib/experiments/e1_replication.ml: Common Haf_analysis Haf_services List Metrics Runner Scenario Summary Table
