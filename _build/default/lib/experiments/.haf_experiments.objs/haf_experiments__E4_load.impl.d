lib/experiments/e4_load.ml: Common Haf_core Haf_net Haf_services List Metrics Policy Printf Runner Scenario Summary Table
