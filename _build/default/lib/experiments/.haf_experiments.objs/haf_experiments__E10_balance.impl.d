lib/experiments/e10_balance.ml: Common Haf_core Haf_services Haf_sim Hashtbl Int List Metrics Policy Runner Scenario Table
