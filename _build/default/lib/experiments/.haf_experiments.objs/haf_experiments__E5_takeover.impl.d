lib/experiments/e5_takeover.ml: Common Events Haf_analysis Haf_gcs Haf_net Haf_services List Metrics Policy Printf Runner Scenario Summary Table
