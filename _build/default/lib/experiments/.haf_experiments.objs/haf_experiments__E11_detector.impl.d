lib/experiments/e11_detector.ml: Common Haf_gcs Haf_net Haf_services Int List Metrics Printf Runner Scenario Summary Table
