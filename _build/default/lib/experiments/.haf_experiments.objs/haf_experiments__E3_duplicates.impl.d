lib/experiments/e3_duplicates.ml: Common Events Haf_analysis Haf_services List Metrics Policy Printf Runner Scenario Table
