lib/experiments/e9_model.ml: Common Haf_analysis Haf_sim List Printf Table
