lib/experiments/e8_baselines.ml: Common Haf_core Haf_services List Metrics Policy Runner Scenario Summary Table
