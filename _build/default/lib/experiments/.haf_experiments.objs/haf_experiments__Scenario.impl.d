lib/experiments/scenario.ml: Format Haf_core Haf_gcs Haf_net Int List Printf
