(** E6 — Dual primaries under transitive vs. non-transitive partitions.

    Paper claim (Section 4): "The session group may have partitioned,
    with at least two partitions each seeing the given client as
    connected to it.  This can only happen while the underlying
    transmission system is not transitive: there are servers which can't
    communicate with one another, but can both communicate with the
    client.  This is very unlikely in a LAN environment, but it does
    occur sometimes in WANs."

    Scenario LAN/transitive: a clean partition separates the client
    together with one half of the servers.  Scenario WAN/non-transitive:
    the same server-to-server cut, but the client keeps connectivity to
    both halves.  We measure server-side dual-primary time and — the
    client-visible symptom — time during which the client receives the
    stream from two different servers at once. *)

module R = Runner.Make (Haf_services.Synthetic)
open Common

let id = "e6"

let title = "E6: dual primary, transitive vs non-transitive partitions (Sec. 4)"

let split_at = 20.

let heal_at = 55.

let run ~quick =
  ignore quick;
  let table =
    Table.create ~title
      ~columns:
        [
          ("connectivity", Table.Left);
          ("dual-primary time (server belief)", Table.Right);
          ("client multi-source time", Table.Right);
          ("duplicate responses", Table.Right);
        ]
      ()
  in
  let duration = 80. in
  let run_case ~client_sees_both label =
    let sc =
      {
        Scenario.default with
        seed = 600;
        n_servers = 4;
        n_units = 1;
        replication = 4;
        n_clients = 1;
        request_interval = 0.;
        session_duration = duration +. 30.;
        duration;
        policy = { Policy.default with n_backups = 1 };
      }
    in
    let tl, _ =
      R.run_scenario sc ~prepare:(fun w ->
          let gcs = w.R.gcs in
          let client = 4 (* first client process after 4 servers *) in
          ignore
            (Haf_sim.Engine.schedule_at w.R.engine ~time:split_at (fun () ->
                 List.iter
                   (fun a ->
                     List.iter
                       (fun b ->
                         Haf_gcs.Gcs.set_link gcs a b false;
                         Haf_gcs.Gcs.set_link gcs b a false)
                       [ 2; 3 ])
                   [ 0; 1 ];
                 if not client_sees_both then
                   List.iter
                     (fun b ->
                       Haf_gcs.Gcs.set_link gcs client b false;
                       Haf_gcs.Gcs.set_link gcs b client false)
                     [ 2; 3 ]));
          ignore
            (Haf_sim.Engine.schedule_at w.R.engine ~time:heal_at (fun () ->
                 Haf_gcs.Gcs.heal gcs)))
    in
    (* Measure within the partition window only: after the heal both
       scenarios see a burst of retransmitted backlog, which is a
       different (transient) phenomenon. *)
    let windowed = List.filter (fun (at, _) -> at <= heal_at) tl in
    let sids = Metrics.session_ids tl in
    let dual =
      List.fold_left
        (fun acc sid -> acc +. Metrics.dual_primary_time windowed ~sid ~horizon:heal_at)
        0. sids
    in
    let multi =
      List.fold_left
        (fun acc sid -> acc +. Metrics.multi_source_time windowed ~sid ~window:1.0)
        0. sids
    in
    let dups = total_duplicates windowed in
    Table.add_row table
      [
        label;
        Printf.sprintf "%.1fs" dual;
        Printf.sprintf "%.1fs" multi;
        Table.fint dups;
      ]
  in
  run_case ~client_sees_both:false "LAN: transitive partition (client in one side)";
  run_case ~client_sees_both:true "WAN: non-transitive (client sees both sides)";
  [ table ]
