(** E1 — Availability vs. degree of replication.

    Paper claim (Section 4): a client loses service when "every server
    which can provide this content may have either crashed or
    disconnected ... The probability of this scenario can be reduced by
    increasing the degree of replication."

    We run the synthetic service under independent server crashes with
    repair, sweeping the number of replicas per content unit, and measure
    client-side availability (fraction of session time the response
    stream is flowing) and no-primary time.  The analytical column is the
    steady-state probability that all k replicas are down at once. *)

module R = Runner.Make (Haf_services.Synthetic)
open Common

let id = "e1"

let title = "E1: availability vs replication degree (Sec. 4, replication claim)"

let lambda = 1. /. 40.

let repair = 8.

let run ~quick =
  let table =
    Table.create ~title
      ~columns:
        [
          ("replicas", Table.Right);
          ("runs", Table.Right);
          ("availability", Table.Right);
          ("no-primary frac", Table.Right);
          ("model all-down", Table.Right);
          ("model availability ceiling", Table.Right);
        ]
      ()
  in
  let duration = if quick then 90. else 180. in
  List.iter
    (fun replicas ->
      let metrics =
        List.map
          (fun seed ->
            let sc =
              {
                Scenario.default with
                seed;
                n_servers = 5;
                n_units = 1;
                replication = replicas;
                n_clients = 3;
                request_interval = 0.;
                session_duration = duration +. 30.;
                duration;
              }
            in
            let tl, _ =
              R.run_scenario sc ~prepare:(fun w ->
                  R.schedule_poisson_crashes w ~lambda ~repair ~start:5. ())
            in
            let avail = mean_availability tl ~until:duration in
            let nop =
              let sids = Metrics.session_ids tl in
              let fracs =
                List.map
                  (fun sid ->
                    Metrics.no_primary_time tl ~sid ~horizon:duration /. duration)
                  sids
              in
              Summary.mean fracs
            in
            (avail, nop))
          (seeds ~quick ~base:100)
      in
      let avail = Summary.mean (List.map fst metrics) in
      let nop = Summary.mean (List.map snd metrics) in
      let all_down =
        Haf_analysis.Model.no_replica_unavailability ~lambda ~repair ~replicas
      in
      Table.add_row table
        [
          Table.fint replicas;
          Table.fint (List.length metrics);
          Table.fpct avail;
          Table.fpct nop;
          Table.fprob all_down;
          Table.fpct (1. -. all_down);
        ])
    [ 1; 2; 3; 4 ];
  [ table ]
