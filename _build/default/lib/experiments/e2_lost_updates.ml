(** E2 — Probability of losing a client context update vs. propagation
    period and session-group size.

    Paper claim (Section 4): "The probability of losing context updates
    sent by the client is the chance of every session group member
    failing or separating from the client during the period between
    propagations.  Thus this probability decreases as either the
    propagation frequency or the size of the session group rise."

    We inject exactly that fault pattern: every [wipe_every] seconds each
    server holding a role for some session crashes independently with
    probability [kill_prob] (and is repaired shortly after).  An update
    is lost only when {e all} session-group members die before the
    update's information reaches the content group — so the measured
    loss rate should fall geometrically with the number of backups
    (factor [kill_prob] per backup) and grow with the propagation
    period.  The model column is

      kill_prob^(1+backups) * (P/2 + detection) / wipe_every

    the per-update probability that a wipe hits this session, lands in
    the update's exposure window, and takes the whole group with it
    (each event targets one session, chosen uniformly). *)

module R = Runner.Make (Haf_services.Synthetic)
open Common

let id = "e2"

let title = "E2: lost context updates vs propagation period x backups (Sec. 4)"

let kill_prob = 0.5

let wipe_every = 10.

let repair = 4.

let detection = 0.4  (* suspicion + flush, from E5 *)

let run ~quick =
  let table =
    Table.create ~title
      ~columns:
        [
          ("prop period", Table.Right);
          ("backups", Table.Right);
          ("updates sent", Table.Right);
          ("lost", Table.Right);
          ("loss rate", Table.Right);
          ("model", Table.Right);
        ]
      ()
  in
  let duration = if quick then 120. else 240. in
  let periods = if quick then [ 0.5; 4. ] else [ 0.25; 0.5; 1.; 2.; 4. ] in
  List.iter
    (fun period ->
      List.iter
        (fun backups ->
          let lost, sent =
            List.fold_left
              (fun (l, s) seed ->
                let sc =
                  {
                    Scenario.default with
                    seed;
                    n_servers = 5;
                    n_units = 1;
                    replication = 5;
                    n_clients = 4;
                    request_interval = 1.0;
                    session_duration = duration +. 30.;
                    duration;
                    policy =
                      {
                        Policy.default with
                        n_backups = backups;
                        propagation_period = period;
                      };
                  }
                in
                let tl, _ =
                  R.run_scenario sc ~prepare:(fun w ->
                      R.schedule_group_wipes w ~every:wipe_every ~kill_prob ~repair ())
                in
                let l', s' = total_lost_sent tl in
                (l + l', s + s'))
              (0, 0)
              (seeds ~quick ~base:(200 + int_of_float (period *. 10.)))
          in
          let n_sessions = 4 in
          let model =
            (kill_prob ** float_of_int (backups + 1))
            *. ((period /. 2.) +. detection)
            /. (wipe_every *. float_of_int n_sessions)
          in
          Table.add_row table
            [
              Printf.sprintf "%gs" period;
              Table.fint backups;
              Table.fint sent;
              Table.fint lost;
              Table.fprob (ratio lost sent);
              Table.fprob model;
            ])
        [ 0; 1; 2 ])
    periods;
  [ table ]
