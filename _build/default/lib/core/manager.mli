(** Availability manager: automated policy enforcement.

    The paper (Sections 1 and 5) leaves policy {e enforcement} to
    automation: "once a policy is chosen, its enforcement could be
    automated through techniques such as spawning new servers when
    needed, as described in [5]" (Mishra & Pang's availability
    management service).  This component closes that loop: a periodic
    control loop observes per-unit health (live replicas, active
    sessions) and asks the environment to bring up capacity when a unit
    is under-replicated or the cluster is overloaded.

    The manager is deliberately mechanism-free: [observe] and [spawn]
    are supplied by the deployment (in this repository, the experiment
    harness), so the same loop drives a simulation or a real fleet. *)

type health = {
  h_unit : string;
  h_live_replicas : int;
  h_sessions : int;
}

type reason =
  | Under_replicated of string  (** Unit below the replica floor. *)
  | Overloaded of string  (** Unit above the sessions-per-replica ceiling. *)

val reason_to_string : reason -> string

type t

val create :
  engine:Haf_sim.Engine.t ->
  check_period:float ->
  min_replicas:int ->
  max_load:float ->
  ?cooldown:float ->
  observe:(unit -> health list) ->
  spawn:(reason -> unit) ->
  unit ->
  t
(** Start the control loop.  Every [check_period] seconds it scans the
    [observe] report and calls [spawn] for the worst-off unit if any unit
    has fewer than [min_replicas] live replicas or more than [max_load]
    sessions per live replica.  [cooldown] (default [3 *. check_period])
    suppresses further spawns while the previous one takes effect —
    without it the loop would stampede capacity during a long repair. *)

val stop : t -> unit

val decisions : t -> (float * reason) list
(** Spawn decisions taken so far, oldest first. *)

val evaluate :
  min_replicas:int -> max_load:float -> health list -> reason option
(** The pure policy kernel: worst under-replication first, then worst
    overload.  Exposed for direct unit testing. *)
