(** Availability policy: the paper's configurable parameters.

    "The key configurable parameters in our framework are the number of
    servers at each level of synchronization, and the frequency with
    which the primary propagates context to the other servers." *)

type takeover =
  | Resume
      (** Retransmit every response since the last known position.  The
          client may see duplicates, but never misses a response
          (paper: favour duplicates for MPEG I-frames). *)
  | Skip_ahead
      (** Fast-forward to the estimated live position.  No duplicates,
          but responses sent in the uncertainty window may be lost. *)
  | Hybrid
      (** Fast-forward, but retransmit the {e critical} responses from
          the skipped range: the paper's per-frame-class MPEG policy. *)

type t = {
  n_backups : int;
      (** Backup servers per session group (0 reproduces the VoD design
          of [2], i.e. session group = primary only). *)
  propagation_period : float;
      (** Seconds between the primary's context propagations to the
          content group ([2] used 0.5 s). *)
  takeover : takeover;
  rebalance_on_join : bool;
      (** Move sessions off overloaded servers when servers join
          ("the servers evenly re-distribute the clients among them"). *)
  grant_timeout : float;
      (** Client-side: re-send the start-session request if no grant
          arrived within this long. *)
}

val default : t
(** 1 backup, 0.5 s propagation, [Resume] takeover, rebalancing on. *)

val vod_paper : t
(** The configuration of the VoD service of [2]: no backups, 0.5 s
    propagation. *)

val validate : t -> (t, string) result

val pp : Format.formatter -> t -> unit

val takeover_to_string : takeover -> string
