(** Group naming conventions.

    The paper's three group scales map to deterministic names, so that
    every server — and the deterministic selection function — computes the
    same group name with no extra coordination ("the group name is
    computed deterministically by each of the servers"). *)

val service_group : string
(** The group of all servers; the clients' a-priori-known contact point. *)

val content_group : string -> string
(** [content_group unit_id]: the group of servers replicating one content
    unit. *)

val session_group : string -> string
(** [session_group session_id]: primary + backups of one live session. *)

val is_service_group : string -> bool

val content_unit_of : string -> string option
(** Inverse of {!content_group}. *)

val session_of : string -> string option
(** Inverse of {!session_group}. *)
