(** Policy recommendation from availability targets: the paper's
    future-work extension ("the user might express a desired service
    quality in terms of a chance of losing a context update, and the
    system could then adjust the needed number of backups in each session
    group", Section 5).

    Uses the Section-4 risk model to search the (backups, propagation
    period) space for the cheapest configuration meeting a target
    per-update loss probability.  "Cheapest" prefers fewer backups first
    (they cost request fan-out on every update), then the longest
    propagation period that still meets the target (propagation dominates
    steady-state load). *)

type recommendation = {
  backups : int;
  period : float;
  achieved_loss : float;  (** Model-predicted loss at this setting. *)
}

val recommend :
  lambda:float ->
  target_loss:float ->
  periods:float list ->
  max_backups:int ->
  recommendation option
(** [recommend ~lambda ~target_loss ~periods ~max_backups] returns the
    cheapest configuration whose modelled per-update loss probability is
    at most [target_loss] under per-server crash rate [lambda], or [None]
    if even [max_backups] with the shortest period cannot meet it. *)

val to_policy : recommendation -> Policy.t
(** Materialize a recommendation over {!Policy.default}. *)
