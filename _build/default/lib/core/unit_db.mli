(** The replicated unit database.

    One instance lives at every member of a content group.  It "keeps
    track of the sessions that exist for a particular content unit, the
    allocation of servers to these sessions, and session context
    information as periodically propagated by each primary."

    Consistency is not this module's job: the framework applies the same
    totally ordered stream of operations at every member (or merges
    explicit state-exchange snapshots after a view change with joiners),
    so replicas stay identical — a property the test suite checks.  All
    operations here are deterministic. *)

type 'ctx snapshot = {
  snap_ctx : 'ctx;
  snap_req_seq : int;  (** Highest incorporated request seq. *)
  snap_applied : int list;  (** Exact incorporated request seqs. *)
  snap_at : float;
}

type 'ctx session = {
  session_id : string;
  client : int;
  unit_id : string;
  started_at : float;
  mutable primary : int option;
  mutable backups : int list;
  mutable propagated : 'ctx snapshot option;
}

type 'ctx t

val create : unit_id:string -> 'ctx t

val unit_id : _ t -> string

val add_session :
  'ctx t -> session_id:string -> client:int -> started_at:float -> 'ctx session
(** Idempotent: re-adding an existing session returns the original. *)

val remove_session : 'ctx t -> string -> unit

val find : 'ctx t -> string -> 'ctx session option

val mem : 'ctx t -> string -> bool

val sessions : 'ctx t -> 'ctx session list
(** Sorted by session id — the deterministic iteration order everything
    else relies on. *)

val size : _ t -> int

val set_propagated : 'ctx t -> string -> 'ctx snapshot -> unit
(** Keeps the freshest snapshot: older [snap_req_seq]/[snap_at] pairs
    never overwrite newer ones (relevant when merging partitions). *)

val set_assignment : 'ctx t -> string -> primary:int -> backups:int list -> unit

(** {2 State exchange} *)

type 'ctx record = {
  r_session_id : string;
  r_client : int;
  r_unit_id : string;
  r_started_at : float;
  r_propagated : 'ctx snapshot option;
  r_primary : int option;
  r_backups : int list;
}

val export : 'ctx t -> 'ctx record list

val merge_records : 'ctx t -> 'ctx record list -> unit
(** Union by session id.  For sessions known on both sides, the side with
    the fresher propagated snapshot wins both the snapshot and the
    recorded assignment (ties broken by lower primary id) — a
    deterministic, order-independent rule, so replicas merging the same
    snapshots in any order converge. *)

val replace_with_merge : 'ctx t -> 'ctx record list list -> unit
(** Rebuild the database as the merge of several exported snapshots (the
    post-view-change state exchange). *)

val equal_shape : 'ctx t -> 'ctx t -> bool
(** Same sessions with the same assignments and snapshot metadata
    (contexts compared structurally is up to the service; we compare
    req_seq/at).  Exact equality holds at every message-delivery point;
    sampled between deliveries, a propagation can be in flight — use
    {!equal_assignments} for probes at arbitrary instants. *)

val equal_assignments : 'ctx t -> 'ctx t -> bool
(** Same sessions with the same clients and primary/backup assignments —
    the coordination-relevant state, which must agree at {e any} instant
    on members sharing a view (snapshots are only eventually equal by
    design: they lag by at most one propagation in flight). *)
