lib/core/framework.ml: Events Format Haf_gcs Haf_sim Hashtbl Int List Marshal Naming Option Policy Printf Selection Service_intf String Sys Unit_db
