lib/core/unit_db.mli:
