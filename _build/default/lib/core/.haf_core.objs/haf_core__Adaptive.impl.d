lib/core/adaptive.ml: Haf_analysis List Policy
