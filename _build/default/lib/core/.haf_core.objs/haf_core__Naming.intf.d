lib/core/naming.mli:
