lib/core/manager.mli: Haf_sim
