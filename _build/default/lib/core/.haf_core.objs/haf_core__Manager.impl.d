lib/core/manager.ml: Haf_sim List Option Printf
