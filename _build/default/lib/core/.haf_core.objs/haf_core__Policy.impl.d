lib/core/policy.ml: Format
