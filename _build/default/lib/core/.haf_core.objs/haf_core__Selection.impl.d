lib/core/selection.ml: Float Hashtbl List String
