lib/core/service_intf.ml: Haf_sim
