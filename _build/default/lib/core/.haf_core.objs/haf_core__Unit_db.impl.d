lib/core/unit_db.ml: Hashtbl List Option String
