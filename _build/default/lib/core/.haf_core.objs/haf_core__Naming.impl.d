lib/core/naming.ml: String
