lib/core/events.mli: Format
