lib/core/framework.mli: Events Haf_gcs Policy Service_intf Unit_db
