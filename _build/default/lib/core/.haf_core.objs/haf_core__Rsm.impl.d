lib/core/rsm.ml: Haf_gcs List Marshal String
