lib/core/adaptive.mli: Policy
