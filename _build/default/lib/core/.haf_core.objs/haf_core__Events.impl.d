lib/core/events.ml: Format List String
