lib/core/rsm.mli: Haf_gcs
