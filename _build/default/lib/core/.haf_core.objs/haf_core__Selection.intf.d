lib/core/selection.mli:
