(** Replicated state machine over the GCS — the paper's second
    future-work item: "integrate into the design a mechanism for
    consistently updating the state that is shared between clients, using
    the well-known replicated state machine technique [6]" (Section 5).

    Commands are disseminated with the group's totally ordered multicast
    and applied deterministically at every replica, so replicas that
    deliver the same sequence hold identical state.  Because the GCS is
    partitionable, consistency across partitions uses the standard
    primary-partition rule: only a component holding a {e majority} of
    the configured replica set applies commands; minority members buffer
    their own submissions and catch up through a state synchronization
    round when views merge (mirroring the framework's unit-database
    exchange).

    The intended use in the framework is consistent updates to the
    shared {e content} (e.g. adding a movie to the VoD catalog), which
    the paper otherwise scopes out; `examples/shared_state.exe` shows it
    standing alone.  An RSM endpoint owns its process's GCS callbacks, so
    run it on a dedicated process or multiplex externally. *)

module type MACHINE = sig
  type state

  type command

  val initial : state

  val apply : state -> command -> state
  (** Must be pure and deterministic. *)
end

module Make (M : MACHINE) : sig
  type t

  val create :
    Haf_gcs.Gcs.t ->
    proc:int ->
    group:string ->
    total:int ->
    ?on_apply:(M.command -> M.state -> unit) ->
    unit ->
    t
  (** Join [group] as one of [total] configured replicas.  [on_apply]
      fires after each command is applied locally. *)

  val submit : t -> M.command -> unit
  (** Propose a command.  Applied (everywhere) only once this replica is
      part of a majority component; until then it is buffered and
      resubmitted automatically after merges. *)

  val state : t -> M.state

  val applied_count : t -> int
  (** Number of commands applied; replicas with equal counts hold equal
      states. *)

  val in_majority : t -> bool

  val pending : t -> int
  (** Commands buffered awaiting a majority. *)
end
