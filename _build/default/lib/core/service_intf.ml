(** The contract a concrete service implements to be hosted by the
    framework.

    The paper's service model: static {e content} (outside the framework's
    scope), plus a frequently changing per-session {e context}.  The
    context is advanced by two things only — requests from the client
    ("context updates") and responses sent by the primary — so the whole
    service behaviour is captured by three pure functions:
    [apply_request], [tick] and [initial_context].

    All functions must be pure and deterministic: the framework evaluates
    them at primaries, backups and takeover sites and relies on identical
    results from identical inputs. *)

module type SERVICE = sig
  type context
  (** Per-session state: "which parts of the content the client wants to
      receive in responses, and how those responses should be sent". *)

  type request
  (** A context update from the client. *)

  type response
  (** One unit of content streamed back (e.g. a video frame). *)

  val name : string

  val initial_context : unit_id:string -> context
  (** The context of a freshly started session on a content unit. *)

  val apply_request : context -> request -> context

  val tick : context -> response list * context
  (** Produce the next batch of responses (possibly none) and advance the
      context's response-progress component.  The primary calls this once
      per {!tick_period}; the framework also replays it to fast-forward
      or re-deliver after a migration, depending on the takeover
      policy. *)

  val tick_period : float
  (** Seconds between response batches (e.g. frame period). *)

  val session_finished : context -> bool
  (** The content has been fully delivered; the primary will end the
      session. *)

  val response_id : response -> int
  (** Stable identifier used to detect duplicate and missing responses
      client-side (e.g. the frame number). *)

  val response_critical : response -> bool
  (** Must-not-lose responses (the paper's MPEG I-frames): under the
      [Hybrid] takeover policy these are re-sent from the uncertainty
      window while non-critical ones are skipped. *)

  val gen_request : Haf_sim.Rng.t -> seq:int -> request
  (** Draw a plausible client request; used by the workload driver. *)
end
