lib/stats/metrics.ml: Array Float Haf_core Hashtbl Int List Option
