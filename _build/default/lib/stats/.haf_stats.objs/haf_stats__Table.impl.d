lib/stats/table.ml: Buffer Float Int List Printf String
