lib/stats/report.mli: Metrics Table
