lib/stats/report.ml: Haf_core List Metrics Printf String Summary Table
