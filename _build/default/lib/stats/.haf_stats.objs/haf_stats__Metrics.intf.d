lib/stats/metrics.mli: Haf_core
