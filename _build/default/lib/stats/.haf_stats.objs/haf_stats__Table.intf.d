lib/stats/table.mli:
