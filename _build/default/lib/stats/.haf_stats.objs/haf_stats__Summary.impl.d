lib/stats/summary.ml: Float Format Int List
