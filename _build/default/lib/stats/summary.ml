type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let percentile xs p =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int n)) |> Int.max 1 |> Int.min n
      in
      List.nth sorted (rank - 1)

let of_list xs =
  match xs with
  | [] -> { n = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0. }
  | _ ->
      {
        n = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = List.fold_left Float.min infinity xs;
        max = List.fold_left Float.max neg_infinity xs;
        p50 = percentile xs 50.;
        p95 = percentile xs 95.;
      }

let ci95_halfwidth t =
  if t.n <= 1 then 0. else 1.96 *. t.stddev /. sqrt (float_of_int t.n)

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g +-%.2g [%.4g..%.4g] p50=%.4g p95=%.4g" t.n
    t.mean (ci95_halfwidth t) t.min t.max t.p50 t.p95
