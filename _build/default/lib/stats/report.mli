(** Render a human-readable report of a framework run from its event
    timeline: per-session delivery quality, fault and takeover summary,
    and global counters.  This is the "what happened?" view an operator
    would want after a drill; `examples/run_report.exe` shows it on a
    chaotic scenario. *)

val per_session_table : horizon:float -> Metrics.timeline -> Table.t
(** One row per session: responses, duplicates, missing, lost updates,
    availability, crash/rebalance takeovers. *)

val fault_table : Metrics.timeline -> Table.t
(** Chronological fault and takeover log. *)

val summary_table : horizon:float -> Metrics.timeline -> Table.t
(** Global counters: sessions, responses, propagations, crashes,
    takeovers by kind, mean availability. *)

val render : ?title:string -> horizon:float -> Metrics.timeline -> string
(** The three tables concatenated, ready to print. *)
