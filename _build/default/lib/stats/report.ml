module Events = Haf_core.Events

let stall_threshold = 1.5

let per_session_table ~horizon tl =
  let table =
    Table.create ~title:"sessions"
      ~columns:
        [
          ("session", Table.Left);
          ("responses", Table.Right);
          ("dups", Table.Right);
          ("missing", Table.Right);
          ("updates lost", Table.Right);
          ("availability", Table.Right);
          ("crash takeovers", Table.Right);
          ("rebalances", Table.Right);
        ]
      ()
  in
  List.iter
    (fun sid ->
      let lost, sent = Metrics.requests_lost tl ~sid in
      (* The missing-responses metric assumes a linear id stream; once the
         client steered the stream (seeks, repositions) id-space gaps are
         intentional. *)
      let missing_cell =
        if sent > 0 then "n/a (client steered)"
        else Table.fint (Metrics.missing tl ~sid)
      in
      let count kind =
        List.length
          (List.filter
             (fun (_, e) ->
               match e with
               | Events.Takeover { session_id; kind = k; _ } ->
                   session_id = sid && k = kind
               | _ -> false)
             tl)
      in
      Table.add_row table
        [
          sid;
          Table.fint (List.length (Metrics.responses_received tl ~sid));
          Table.fint (Metrics.duplicates tl ~sid);
          missing_cell;
          Printf.sprintf "%d/%d" lost sent;
          Table.fpct (Metrics.availability tl ~sid ~threshold:stall_threshold ~until:horizon);
          Table.fint (count Events.Crash);
          Table.fint (count Events.Rebalance);
        ])
    (Metrics.session_ids tl);
  table

let fault_table tl =
  let table =
    Table.create ~title:"faults and takeovers"
      ~columns:[ ("time", Table.Right); ("event", Table.Left) ]
      ()
  in
  List.iter
    (fun (at, e) ->
      match e with
      | Events.Server_crashed { server } ->
          Table.add_row table
            [ Printf.sprintf "%.2fs" at; Printf.sprintf "server %d crashed" server ]
      | Events.Server_restarted { server } ->
          Table.add_row table
            [ Printf.sprintf "%.2fs" at; Printf.sprintf "server %d restarted" server ]
      | Events.Takeover { server; session_id; kind; had_live_context; _ } ->
          Table.add_row table
            [
              Printf.sprintf "%.2fs" at;
              Printf.sprintf "server %d took over %s (%s%s)" server session_id
                (Events.kind_to_string kind)
                (if had_live_context then ", live context" else ", from snapshot");
            ]
      | _ -> ())
    tl;
  table

let summary_table ~horizon tl =
  let table =
    Table.create ~title:"summary"
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
      ()
  in
  let sids = Metrics.session_ids tl in
  let availability =
    Summary.mean
      (List.map
         (fun sid ->
           Metrics.availability tl ~sid ~threshold:stall_threshold ~until:horizon)
         sids)
  in
  let crashes =
    List.length
      (List.filter
         (fun (_, e) -> match e with Events.Server_crashed _ -> true | _ -> false)
         tl)
  in
  let lost, sent =
    List.fold_left
      (fun (l, s) sid ->
        let l', s' = Metrics.requests_lost tl ~sid in
        (l + l', s + s'))
      (0, 0) sids
  in
  Table.add_rows table
    [
      [ "sessions"; Table.fint (List.length sids) ];
      [ "responses delivered"; Table.fint (List.length (List.concat_map (fun sid -> Metrics.responses_received tl ~sid) sids)) ];
      [ "context updates (lost/sent)"; Printf.sprintf "%d/%d" lost sent ];
      [ "propagations"; Table.fint (Metrics.count_propagations tl) ];
      [ "server crashes"; Table.fint crashes ];
      [ "crash takeovers"; Table.fint (Metrics.count_takeovers ~kind:Events.Crash tl) ];
      [ "rebalance migrations"; Table.fint (Metrics.count_takeovers ~kind:Events.Rebalance tl) ];
      [ "mean availability"; Table.fpct availability ];
    ];
  table

let render ?(title = "run report") ~horizon tl =
  String.concat "\n\n"
    [
      "# " ^ title;
      Table.render (summary_table ~horizon tl);
      Table.render (per_session_table ~horizon tl);
      Table.render (fault_table tl);
    ]
