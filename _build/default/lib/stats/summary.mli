(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1). *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val of_list : float list -> t
(** Zeroed summary for the empty list. *)

val mean : float list -> float

val stddev : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [0,100], nearest-rank on sorted data. *)

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean: [1.96 * stddev / sqrt n]. *)

val pp : Format.formatter -> t -> unit
