(** Group views.

    A view is the membership service's report of a group's current
    composition.  View identifiers pair a monotonically increasing epoch
    with the identity of the coordinator that installed the view, which
    makes them unique across concurrent partitions. *)

type proc = int

module Id : sig
  type t = { epoch : int; coord : proc }

  val compare : t -> t -> int
  (** Lexicographic on (epoch, coord). *)

  val equal : t -> t -> bool

  val initial : proc -> t
  (** The id of the singleton view a process self-installs on join:
      epoch 0, coordinated by itself. *)

  val pp : Format.formatter -> t -> unit
end

type t = {
  id : Id.t;
  group : string;
  members : proc list;  (** Sorted ascending; never empty. *)
}

val make : id:Id.t -> group:string -> members:proc list -> t
(** Sorts and dedupes [members].  @raise Invalid_argument if empty. *)

val singleton : group:string -> proc -> t

val is_member : t -> proc -> bool

val size : t -> int

val coordinator : t -> proc
(** The lowest-id member: sequencer of the view's totally ordered
    multicasts. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
