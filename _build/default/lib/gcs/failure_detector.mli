(** Heartbeat-based failure detector bookkeeping.

    The daemon drives this module: it records when peers were last heard
    from and classifies silence as suspicion.  The detector is local and
    unreliable by design — the membership protocol, not the detector, is
    responsible for agreement.  During stable periods it is accurate,
    which is what the paper's "precise views in stable times" relies
    on. *)

type proc = int

type t

val create : me:proc -> suspect_timeout:float -> t

val monitor : t -> proc -> now:float -> unit
(** Start watching a peer.  A freshly monitored peer gets a grace period
    of one timeout before it can be suspected. *)

val unmonitor : t -> proc -> unit

val monitored : t -> proc list

val is_monitored : t -> proc -> bool

val heard_from : t -> proc -> now:float -> unit
(** Record any direct communication from the peer.  Clears an existing
    suspicion (the membership sweep will then attempt a merge). *)

val sweep : t -> now:float -> proc list
(** Mark newly silent peers as suspected; returns them. *)

val suspected : t -> proc -> bool
(** Unmonitored peers are never suspected. *)

val suspects : t -> proc list

val reachable : t -> proc -> bool
(** Monitored and not suspected. *)

val last_heard : t -> proc -> float option
