lib/gcs/daemon.ml: Config Failure_detector Format Haf_net Haf_sim Hashtbl Int Int64 List Option Printf String View Wire
