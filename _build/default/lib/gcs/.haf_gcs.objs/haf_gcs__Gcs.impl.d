lib/gcs/gcs.ml: Config Daemon Haf_net Haf_sim Hashtbl List Option Printf
