lib/gcs/causal.mli:
