lib/gcs/wire.mli: View
