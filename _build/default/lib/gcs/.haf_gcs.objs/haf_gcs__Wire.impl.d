lib/gcs/wire.ml: Marshal Printf View
