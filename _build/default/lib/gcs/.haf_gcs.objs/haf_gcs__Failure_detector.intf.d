lib/gcs/failure_detector.mli:
