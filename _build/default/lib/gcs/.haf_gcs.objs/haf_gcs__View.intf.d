lib/gcs/view.mli: Format
