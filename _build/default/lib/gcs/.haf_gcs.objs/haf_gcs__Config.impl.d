lib/gcs/config.ml: Format
