lib/gcs/config.mli: Format
