lib/gcs/gcs.mli: Config Daemon Haf_net Haf_sim View
