lib/gcs/failure_detector.ml: Hashtbl List Option
