lib/gcs/causal.ml: Array List
