lib/gcs/daemon.mli: Config Haf_net Haf_sim View
