lib/gcs/view.ml: Format Int List String
