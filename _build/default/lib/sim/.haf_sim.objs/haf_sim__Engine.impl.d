lib/sim/engine.ml: Float Heap Option Rng
