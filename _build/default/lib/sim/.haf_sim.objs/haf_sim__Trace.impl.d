lib/sim/trace.ml: Format List Printf Queue String
