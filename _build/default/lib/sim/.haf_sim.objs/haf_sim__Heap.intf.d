lib/sim/heap.mli:
