lib/sim/rng.mli:
