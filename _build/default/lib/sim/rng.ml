type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let copy t = { state = t.state }

let nonneg t = Int64.shift_right_logical (bits64 t) 1

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (nonneg t) (Int64.of_int bound))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let uniform t =
  Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1.0p-53

let float t bound = uniform t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = uniform t < p

let exponential t ~mean = -.mean *. log (1. -. uniform t)

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> pick_array t (Array.of_list xs)

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k xs =
  let shuffled = shuffle t xs in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k shuffled
