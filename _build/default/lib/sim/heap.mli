(** Imperative binary min-heap, the core of the event queue.

    Elements are ordered by a [leq] relation supplied at creation.  The
    engine uses a (time, sequence) priority so that simultaneous events
    fire in FIFO order, which keeps runs deterministic. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] is an empty heap ordered by [leq] (non-strict). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in no particular order. *)
