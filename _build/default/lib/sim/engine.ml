type timer = {
  mutable cancelled : bool;
  mutable action : unit -> unit;
}

type entry = { fire_at : float; seq : int; timer : timer }

type t = {
  mutable clock : float;
  queue : entry Heap.t;
  root_rng : Rng.t;
  mutable next_seq : int;
  mutable fired : int;
}

let entry_leq a b =
  a.fire_at < b.fire_at || (a.fire_at = b.fire_at && a.seq <= b.seq)

let create ?(seed = 1) () =
  {
    clock = 0.;
    queue = Heap.create ~leq:entry_leq;
    root_rng = Rng.create seed;
    next_seq = 0;
    fired = 0;
  }

let now t = t.clock

let rng t = t.root_rng

let fork_rng t = Rng.split t.root_rng

let push_entry t ~at timer =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { fire_at = at; seq; timer }

let schedule_at t ~time f =
  let timer = { cancelled = false; action = f } in
  push_entry t ~at:(Float.max time t.clock) timer;
  timer

let schedule t ~delay f = schedule_at t ~time:(t.clock +. Float.max delay 0.) f

let every t ?first ~period f =
  if period <= 0. then invalid_arg "Engine.every: period must be positive";
  let first = Option.value first ~default:period in
  let timer = { cancelled = false; action = ignore } in
  let rec arm at =
    timer.action <-
      (fun () ->
        f ();
        if not timer.cancelled then arm (at +. period));
    push_entry t ~at timer
  in
  arm (t.clock +. Float.max first 0.);
  timer

let cancel timer = timer.cancelled <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some { fire_at; timer; _ } ->
      t.clock <- Float.max t.clock fire_at;
      if not timer.cancelled then begin
        t.fired <- t.fired + 1;
        timer.action ()
      end;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | Some e when e.fire_at <= limit -> ignore (step t)
        | Some _ | None ->
            t.clock <- Float.max t.clock limit;
            continue := false
      done

let pending t = Heap.length t.queue

let events_processed t = t.fired
