(** Lightweight structured trace for debugging and test assertions.

    Components emit timestamped lines tagged with a component name; tests
    can filter the recorded lines, and interactive runs can echo them to
    stderr.  Tracing is off by default and costs one branch per call when
    disabled. *)

type t

type line = { time : float; component : string; message : string }

val create : ?echo:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds the number of retained lines (default 100_000);
    older lines are dropped first.  [echo] prints lines to stderr as they
    are emitted. *)

val disabled : t
(** A shared sink that records nothing. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val emit : t -> time:float -> component:string -> string -> unit

val emitf :
  t -> time:float -> component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val lines : t -> line list
(** Recorded lines, oldest first. *)

val matching : t -> component:string -> line list

val clear : t -> unit
