(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  Components
    schedule closures to fire at future virtual times; [run] drains the
    queue in (time, insertion-order) order, so simultaneous events fire
    FIFO and every run with the same seed is bit-for-bit reproducible.

    The engine deliberately has no notion of processes or messages; those
    live in {!Haf_net} and above. *)

type t

type timer
(** Handle for a scheduled (possibly periodic) event; cancellation is
    lazy: a cancelled timer stays in the queue but its action is
    skipped. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes an engine whose clock starts at [0.0].
    [seed] (default 1) seeds the root {!Rng.t}. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The engine's root random stream.  Components should normally call
    {!fork_rng} once at creation instead of sharing this. *)

val fork_rng : t -> Rng.t
(** An independent random stream split off the root. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] fires [f] once at [now t +. max delay 0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> timer
(** Absolute-time variant; times in the past fire immediately (at [now]). *)

val every : t -> ?first:float -> period:float -> (unit -> unit) -> timer
(** [every t ~first ~period f] fires [f] at [now + first] (default
    [period]) and then every [period] seconds until cancelled.  Requires
    [period > 0.]. *)

val cancel : timer -> unit
(** Idempotent.  A cancelled timer never fires again. *)

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [until], stop once the next event would
    fire strictly after [until] and set the clock to [until]. *)

val step : t -> bool
(** Execute the single next event.  [false] if the queue was empty. *)

val pending : t -> int
(** Number of queue entries (including lazily-cancelled ones). *)

val events_processed : t -> int
(** Events fired since creation (cancelled entries excluded). *)
