(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulation flows through a value of
    type {!t} seeded explicitly, so a whole experiment is reproducible from
    its scenario description and seed.  The generator is splittable: use
    {!split} to derive an independent stream for a sub-component without
    perturbing the parent stream when components are added or removed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent child generator, advancing [t] once. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for
    memoryless crash and request inter-arrival times. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  @raise Invalid_argument on []. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements, in random
    order. *)
