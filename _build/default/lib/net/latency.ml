type t =
  | Constant of float
  | Uniform of { base : float; jitter : float }
  | Exponential of { base : float; mean_extra : float }

let lan = Uniform { base = 0.0005; jitter = 0.0005 }

let wan = Exponential { base = 0.04; mean_extra = 0.01 }

let floor_delay = 1e-6

let sample t rng =
  let d =
    match t with
    | Constant d -> d
    | Uniform { base; jitter } -> base +. Haf_sim.Rng.float rng jitter
    | Exponential { base; mean_extra } ->
        base +. Haf_sim.Rng.exponential rng ~mean:mean_extra
  in
  Float.max d floor_delay

let mean = function
  | Constant d -> d
  | Uniform { base; jitter } -> base +. (jitter /. 2.)
  | Exponential { base; mean_extra } -> base +. mean_extra

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%gs)" d
  | Uniform { base; jitter } -> Format.fprintf ppf "uniform(%gs+%gs)" base jitter
  | Exponential { base; mean_extra } ->
      Format.fprintf ppf "exp(%gs+~%gs)" base mean_extra
