(** Link latency models.

    A model maps a random stream to a one-way delay sample.  The defaults
    approximate a LAN; experiment E6 uses the WAN model together with
    asymmetric link failures. *)

type t =
  | Constant of float  (** Always the same delay. *)
  | Uniform of { base : float; jitter : float }
      (** [base + U(0, jitter)]. *)
  | Exponential of { base : float; mean_extra : float }
      (** [base + Exp(mean_extra)]: heavy-ish tail for WAN paths. *)

val lan : t
(** 0.5 ms +- 0.5 ms: a switched LAN. *)

val wan : t
(** 40 ms base with exponential tail: a cross-site WAN path. *)

val sample : t -> Haf_sim.Rng.t -> float
(** Draw a delay in seconds; always strictly positive. *)

val mean : t -> float
(** Expected delay, used by analytical models. *)

val pp : Format.formatter -> t -> unit
