lib/net/network.mli: Haf_sim Latency
