lib/net/transport.mli: Haf_sim Network
