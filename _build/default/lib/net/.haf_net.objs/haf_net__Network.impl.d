lib/net/network.ml: Array Haf_sim Hashtbl Int Latency List Option String
