lib/net/transport.ml: Float Haf_sim Hashtbl List Marshal Network
