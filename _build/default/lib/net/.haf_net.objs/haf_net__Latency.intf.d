lib/net/latency.mli: Format Haf_sim
