lib/net/latency.ml: Float Format Haf_sim
