(* Numerical integration is plenty here: the integrand is smooth and the
   domain is one propagation period. *)
let integrate f a b =
  let steps = 1000 in
  let h = (b -. a) /. float_of_int steps in
  let rec go i acc =
    if i >= steps then acc
    else
      let x = a +. ((float_of_int i +. 0.5) *. h) in
      go (i + 1) (acc +. (f x *. h))
  in
  go 0 0.

let update_loss_probability ~lambda ~period ~group_size =
  if period <= 0. then 0.
  else
    integrate (fun d -> (1. -. exp (-.lambda *. d)) ** group_size) 0. period /. period

let update_loss_probability_approx ~lambda ~period ~group_size =
  ((lambda *. period) ** group_size) /. (group_size +. 1.)

let no_replica_unavailability ~lambda ~repair ~replicas =
  let q = lambda *. repair /. (1. +. (lambda *. repair)) in
  q ** float_of_int replicas

let expected_duplicates_per_takeover ~response_rate ~period =
  response_rate *. period /. 2.

let expected_missing_per_takeover = expected_duplicates_per_takeover

let takeover_latency ~suspect_timeout ~rtt ~with_exchange =
  suspect_timeout +. (1.5 *. rtt) +. (if with_exchange then 1.5 *. rtt else 0.)

let propagation_msgs_per_sec ~sessions_primary ~period ~group_size =
  float_of_int sessions_primary /. period *. float_of_int (Int.max 0 (group_size - 1))

let backup_request_load ~sessions_backup ~request_rate =
  float_of_int sessions_backup *. request_rate
