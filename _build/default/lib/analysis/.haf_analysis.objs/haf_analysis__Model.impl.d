lib/analysis/model.ml: Int
