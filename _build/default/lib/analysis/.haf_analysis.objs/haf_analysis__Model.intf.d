lib/analysis/model.mli:
