(** Closed-form models of the paper's Section-4 risk analysis.

    The paper argues qualitatively which fault patterns lose availability
    and how the configurable parameters move the probabilities.  These
    small models make the arguments quantitative so experiment E9 can
    cross-validate them against the simulation.  Crashes are modelled as
    independent Poisson processes of rate [lambda] per server. *)

val update_loss_probability :
  lambda:float -> period:float -> group_size:float -> float
(** Probability that one client context update is lost: every member of
    the session group (primary + backups, [group_size] many) crashes
    between the update's arrival and the next propagation.  The update
    lands uniformly within the propagation period [period], hence

    {v  P(loss) = (1/P) \int_0^P (1 - e^{-lambda d})^g dd  v}

    which for small [lambda*P] behaves like [(lambda P)^g / (g+1)] —
    the paper's claim that loss probability "decreases as either the
    propagation frequency or the size of the session group rise",
    super-linearly in the group size. *)

val update_loss_probability_approx :
  lambda:float -> period:float -> group_size:float -> float
(** The small-rate closed form [(lambda P)^g / (g+1)]. *)

val no_replica_unavailability : lambda:float -> repair:float -> replicas:int -> float
(** Steady-state fraction of time all [replicas] of a content unit are
    down, with exponential repair of mean [repair]: [q^k] for per-server
    unavailability [q = lambda*repair / (1 + lambda*repair)] — the
    paper's "probability of this scenario can be reduced by increasing
    the degree of replication". *)

val expected_duplicates_per_takeover : response_rate:float -> period:float -> float
(** Under the Resume policy, the new primary rewinds to the last
    propagation: expected duplicate responses = rate * P/2 (the paper's
    "half a second of duplicate video frames" for P = 0.5 s). *)

val expected_missing_per_takeover : response_rate:float -> period:float -> float
(** Under Skip-ahead the same window is skipped instead: same magnitude,
    opposite anomaly. *)

val takeover_latency :
  suspect_timeout:float -> rtt:float -> with_exchange:bool -> float
(** Crash-detected takeover: suspicion, then one flush round (propose +
    flush-reply + install ~ 1.5 RTT); a join additionally needs the state
    exchange round. *)

val propagation_msgs_per_sec :
  sessions_primary:int -> period:float -> group_size:int -> float
(** Messages per second a primary spends propagating context: one
    multicast per session per period, fanned to [group_size - 1]
    members. *)

val backup_request_load : sessions_backup:int -> request_rate:float -> float
(** Requests per second a server must receive and record because of its
    backup roles ("the work is merely receiving and recording the
    request; only the primary responds"). *)
