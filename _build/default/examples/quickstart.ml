(* Quickstart: bring up a replicated service, run one client session, and
   watch it survive the primary's crash.

     dune exec examples/quickstart.exe

   This walks the whole public API surface: engine -> GCS fabric ->
   servers -> client -> fault injection -> event timeline. *)

module Engine = Haf_sim.Engine
module Gcs = Haf_gcs.Gcs
module Events = Haf_core.Events
module Policy = Haf_core.Policy
module F = Haf_core.Framework.Make (Haf_services.Vod)

let () =
  (* 1. A deterministic world: engine + simulated network + GCS fabric
     with three server processes. *)
  let engine = Engine.create ~seed:2026 () in
  let gcs = Gcs.create ~num_servers:3 engine in
  let events = Events.make_sink () in

  (* 2. Three replicas of one movie; one backup per session; context
     propagated every half second (the paper's VoD numbers). *)
  let policy = { Policy.default with n_backups = 1; propagation_period = 0.5 } in
  let servers =
    List.map
      (fun p ->
        F.Server.create gcs ~proc:p ~policy ~units:[ "movie:intro" ]
          ~catalog:[ "movie:intro" ] ~events)
      (Gcs.servers gcs)
  in

  (* 3. One client, one session. *)
  let cproc = Gcs.add_client gcs in
  let client = F.Client.create gcs ~proc:cproc ~policy ~events in
  Engine.run ~until:2. engine;
  (* request_interval 0: a pure playback session, so frame ids stay
     contiguous and duplicates/gaps below measure exactly the fail-over
     behaviour. *)
  let sid =
    F.Client.start_session client ~unit_id:"movie:intro" ~duration:30.
      ~request_interval:0.
  in
  Printf.printf "session %s requested\n" sid;

  (* 4. Let it stream for a while, then kill whoever is primary. *)
  Engine.run ~until:10. engine;
  let primary =
    List.find (fun srv -> F.Server.is_primary_of srv sid) servers
  in
  Printf.printf "t=%.1f: crashing primary (server %d)\n" (Engine.now engine)
    (F.Server.proc primary);
  F.Server.stop primary;
  Gcs.crash gcs (F.Server.proc primary);
  Events.emit events ~now:(Engine.now engine)
    (Events.Server_crashed { server = F.Server.proc primary });

  (* 5. Run to the end and report what the client experienced. *)
  Engine.run ~until:40. engine;
  let tl = Events.events events in
  let received = Haf_stats.Metrics.responses_received tl ~sid in
  let dups = Haf_stats.Metrics.duplicates tl ~sid in
  let missing = Haf_stats.Metrics.missing tl ~sid in
  let takeovers = Haf_stats.Metrics.count_takeovers ~kind:Events.Crash tl in
  Printf.printf "frames received: %d\n" (List.length received);
  Printf.printf "crash takeovers: %d\n" takeovers;
  Printf.printf "duplicate frames: %d (new primary resumed from last propagation)\n" dups;
  Printf.printf "missing frames:   %d\n" missing;
  let avail = Haf_stats.Metrics.availability tl ~sid ~threshold:1.0 ~until:30. in
  Printf.printf "availability:     %.1f%%\n" (100. *. avail);
  if takeovers >= 1 && missing = 0 then
    print_endline "OK: the session survived the primary crash with no lost frames."
  else print_endline "unexpected outcome - inspect the event timeline"
