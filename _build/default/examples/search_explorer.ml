(* Refining search: the paper's third motivating service.

     dune exec examples/search_explorer.exe

   A client narrows queries over a document collection; the session
   context is the list of previous result sets, so follow-up queries like
   "restrict query 1 to even ids" only make sense if the context
   survives migration.  We force a migration between queries and check
   that the refinement chain stays consistent. *)

module Engine = Haf_sim.Engine
module Gcs = Haf_gcs.Gcs
module Events = Haf_core.Events
module Policy = Haf_core.Policy
module Search = Haf_services.Search
module F = Haf_core.Framework.Make (Haf_services.Search)

(* Drive explicit queries instead of the random generator: we want a
   specific refinement chain. *)
let queries =
  [
    (* q1: multiples of 3 *)
    Search.Filter { base = None; modulus = 3; residue = 0 };
    (* q2: of those, the even ones -> multiples of 6 *)
    Search.Filter { base = Some 1; modulus = 2; residue = 0 };
    (* q3: intersect q1 with q2 -> still multiples of 6 *)
    Search.Intersect (1, 2);
  ]

let () =
  let engine = Engine.create ~seed:5 () in
  let gcs = Gcs.create ~num_servers:3 engine in
  let events = Events.make_sink () in
  let policy = { Policy.default with n_backups = 1 } in
  let corpus = "corpus:ieee:600" in
  let servers =
    List.map
      (fun p -> F.Server.create gcs ~proc:p ~policy ~units:[ corpus ] ~catalog:[ corpus ] ~events)
      (Gcs.servers gcs)
  in
  let cproc = Gcs.add_client gcs in
  let client = F.Client.create gcs ~proc:cproc ~policy ~events in
  Engine.run ~until:2. engine;
  (* request_interval 0: we inject the queries by hand via the GCS, as a
     raw client of the session group. *)
  let sid = F.Client.start_session client ~unit_id:corpus ~duration:40. ~request_interval:0. in
  Engine.run ~until:4. engine;
  let send_query seq q =
    (* Encode exactly as the framework client does. *)
    let msg = F.Request { session_id = sid; seq; body = q } in
    Gcs.open_send gcs cproc
      (Haf_core.Naming.session_group sid)
      (Marshal.to_string msg []);
    Events.emit events ~now:(Engine.now engine)
      (Events.Request_sent { client = cproc; session_id = sid; seq })
  in
  List.iteri
    (fun i q ->
      ignore
        (Engine.schedule_at engine
           ~time:(6. +. (8. *. float_of_int i))
           (fun () -> send_query (i + 1) q)))
    queries;
  (* Between q2 and q3, kill the primary: the refinement chain must
     survive on the backup. *)
  ignore
    (Engine.schedule_at engine ~time:18. (fun () ->
         match List.find_opt (fun s -> F.Server.is_primary_of s sid) servers with
         | Some primary ->
             Printf.printf "t=%.1f: crashing search node %d between queries\n"
               (Engine.now engine) (F.Server.proc primary);
             F.Server.stop primary;
             Gcs.crash gcs (F.Server.proc primary);
             Events.emit events ~now:(Engine.now engine)
               (Events.Server_crashed { server = F.Server.proc primary })
         | None -> ()));
  Engine.run ~until:45. engine;

  let tl = Events.events events in
  let module M = Haf_stats.Metrics in
  let hits = M.responses_received tl ~sid in
  (* Hits encode (query * 1_000_000 + doc): reconstruct per-query docs. *)
  let docs_of q =
    List.filter_map
      (fun (_, id, _) -> if id / 1_000_000 = q then Some (id mod 1_000_000) else None)
      hits
    |> List.sort_uniq compare
  in
  let q1 = docs_of 1 and q2 = docs_of 2 and q3 = docs_of 3 in
  Printf.printf "q1 (mod 3):        %d hits\n" (List.length q1);
  Printf.printf "q2 (q1 and even):  %d hits\n" (List.length q2);
  Printf.printf "q3 (q1 inter q2):  %d hits\n" (List.length q3);
  let consistent =
    List.for_all (fun d -> d mod 6 = 0) q2 && List.for_all (fun d -> List.mem d q2) q3
  in
  let lost, sent = M.requests_lost tl ~sid in
  Printf.printf "queries lost: %d of %d\n" lost sent;
  if consistent && List.length q3 > 0 then
    print_endline
      "OK: the refinement chain survived the migration (q3 = q2 = multiples of 6)."
  else print_endline "inconsistent refinement chain - inspect the timeline"
