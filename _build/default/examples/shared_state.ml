(* Shared-state updates via the replicated state machine extension.

     dune exec examples/shared_state.exe

   The paper scopes content updates out of the framework and suggests
   (Section 5) handling them "using the well-known replicated state
   machine technique".  Here five catalog nodes replicate a VoD catalog
   as an RSM: adds and retirements are totally ordered, a partition's
   minority side is blocked (primary-partition rule), and everyone
   converges after the heal. *)

module Engine = Haf_sim.Engine
module Gcs = Haf_gcs.Gcs

module Catalog = struct
  type state = string list  (* movies, newest first *)

  type command = Add_movie of string | Retire_movie of string

  let initial = []

  let apply st = function
    | Add_movie m -> if List.mem m st then st else m :: st
    | Retire_movie m -> List.filter (fun x -> x <> m) st
end

module R = Haf_core.Rsm.Make (Catalog)

let show st = "[" ^ String.concat "; " (List.rev st) ^ "]"

let () =
  let n = 5 in
  let engine = Engine.create ~seed:44 () in
  let gcs = Gcs.create ~num_servers:n engine in
  let replicas =
    List.map (fun p -> R.create gcs ~proc:p ~group:"catalog" ~total:n ()) (Gcs.servers gcs)
  in
  Engine.run ~until:2. engine;

  (* Concurrent updates from different operators: total order decides. *)
  R.submit (List.nth replicas 0) (Catalog.Add_movie "casablanca");
  R.submit (List.nth replicas 3) (Catalog.Add_movie "metropolis");
  R.submit (List.nth replicas 1) (Catalog.Add_movie "sunrise");
  Engine.run ~until:4. engine;
  Printf.printf "after concurrent adds, replica 2 sees %s\n"
    (show (R.state (List.nth replicas 2)));

  (* Partition 3-2: the minority cannot update the shared state. *)
  Gcs.partition gcs [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  Engine.run ~until:8. engine;
  let minority = List.nth replicas 4 in
  R.submit minority (Catalog.Add_movie "nosferatu");
  R.submit (List.nth replicas 0) (Catalog.Retire_movie "sunrise");
  Engine.run ~until:12. engine;
  Printf.printf "during partition: majority=%s, minority=%s (pending %d, majority? %b)\n"
    (show (R.state (List.nth replicas 0)))
    (show (R.state minority))
    (R.pending minority) (R.in_majority minority);

  (* Heal: minority syncs and its buffered update finally applies. *)
  Gcs.heal gcs;
  Engine.run ~until:22. engine;
  List.iteri
    (fun i r -> Printf.printf "after heal, replica %d: %s\n" i (show (R.state r)))
    replicas;
  let all_equal =
    List.for_all (fun r -> R.state r = R.state (List.hd replicas)) replicas
  in
  print_endline
    (if all_equal then "OK: all catalog replicas converged."
     else "replicas diverged - inspect")
