examples/partition_drill.ml: Haf_core Haf_gcs Haf_services Haf_sim Haf_stats List Printf String
