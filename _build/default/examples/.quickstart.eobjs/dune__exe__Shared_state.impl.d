examples/shared_state.ml: Haf_core Haf_gcs Haf_sim List Printf String
