examples/vod_session.mli:
