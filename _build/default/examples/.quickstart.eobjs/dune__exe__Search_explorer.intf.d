examples/search_explorer.mli:
