examples/policy_planner.ml: Haf_analysis Haf_core Haf_stats List Printf
