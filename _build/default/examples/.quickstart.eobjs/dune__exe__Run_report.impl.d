examples/run_report.ml: Haf_core Haf_experiments Haf_services Haf_stats
