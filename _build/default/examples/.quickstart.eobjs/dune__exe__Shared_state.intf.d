examples/shared_state.mli:
