examples/education_lesson.ml: Haf_core Haf_gcs Haf_services Haf_sim Haf_stats List Printf
