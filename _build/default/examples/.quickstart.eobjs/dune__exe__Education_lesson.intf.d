examples/education_lesson.mli:
