examples/policy_planner.mli:
