examples/run_report.mli:
