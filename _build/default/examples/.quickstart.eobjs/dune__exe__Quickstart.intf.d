examples/quickstart.mli:
