(* Partition drill: the Section-4 fault patterns, live.

     dune exec examples/partition_drill.exe

   Two acts:
   1. A clean (transitive) partition splits the cluster; the client's
      side keeps serving, the other side idles; after the heal the views
      merge back.
   2. A non-transitive WAN-style fault: the server halves lose each
      other but both still reach the client — the one scenario where the
      client can briefly see two primaries (the paper: "only while the
      underlying transmission system is not transitive"). *)

module Engine = Haf_sim.Engine
module Gcs = Haf_gcs.Gcs
module Events = Haf_core.Events
module Policy = Haf_core.Policy
module Metrics = Haf_stats.Metrics
module F = Haf_core.Framework.Make (Haf_services.Synthetic)

let run_act ~label ~client_sees_both =
  let engine = Engine.create ~seed:31 () in
  let gcs = Gcs.create ~num_servers:4 engine in
  let events = Events.make_sink () in
  let policy = { Policy.default with n_backups = 1 } in
  let _servers =
    List.map
      (fun p -> F.Server.create gcs ~proc:p ~policy ~units:[ "stream" ] ~catalog:[ "stream" ] ~events)
      (Gcs.servers gcs)
  in
  let cproc = Gcs.add_client gcs in
  let client = F.Client.create gcs ~proc:cproc ~policy ~events in
  Engine.run ~until:2. engine;
  let sid = F.Client.start_session client ~unit_id:"stream" ~duration:60. ~request_interval:0. in
  (* Split at t=15: servers {0,1} vs {2,3}. *)
  ignore
    (Engine.schedule_at engine ~time:15. (fun () ->
         List.iter
           (fun a ->
             List.iter
               (fun b ->
                 Gcs.set_link gcs a b false;
                 Gcs.set_link gcs b a false)
               [ 2; 3 ])
           [ 0; 1 ];
         if not client_sees_both then
           List.iter
             (fun b ->
               Gcs.set_link gcs cproc b false;
               Gcs.set_link gcs b cproc false)
             [ 2; 3 ]));
  ignore (Engine.schedule_at engine ~time:40. (fun () -> Gcs.heal gcs));
  Engine.run ~until:55. engine;
  let tl = Events.events events in
  let during = List.filter (fun (at, _) -> at >= 15. && at <= 40.) tl in
  Printf.printf "%s\n" label;
  Printf.printf "  server-side dual-primary time : %.1fs\n"
    (Metrics.dual_primary_time tl ~sid ~horizon:40.);
  Printf.printf "  client saw two streams for    : %.1fs\n"
    (Metrics.multi_source_time during ~sid ~window:1.0);
  Printf.printf "  duplicate responses (split)   : %d\n"
    (Metrics.duplicates during ~sid);
  (* After the heal the membership must reconverge. *)
  let final_members =
    List.filter_map
      (fun p -> Gcs.view_of gcs p (Haf_core.Naming.content_group "stream"))
      (Gcs.servers gcs)
    |> List.map (fun v -> v.Haf_gcs.View.members)
    |> List.sort_uniq compare
  in
  Printf.printf "  views after heal              : %s\n"
    (match final_members with
    | [ m ] -> Printf.sprintf "all agree on {%s}" (String.concat "," (List.map string_of_int m))
    | ms -> Printf.sprintf "%d divergent views" (List.length ms))

let () =
  run_act ~label:"Act 1 - transitive partition (LAN): client inside one side"
    ~client_sees_both:false;
  print_newline ();
  run_act
    ~label:"Act 2 - non-transitive fault (WAN): client reaches both sides"
    ~client_sees_both:true
