(* Video-on-demand walkthrough: the paper's running example.

     dune exec examples/vod_session.exe

   A client discovers the catalog via the service group, picks a movie,
   seeks around, pauses and resumes — while the operator load-balances by
   bringing up an extra server mid-movie.  Demonstrates: service-group
   discovery, content/session groups, context updates, propagation, and
   hitless rebalancing with context handoff. *)

module Engine = Haf_sim.Engine
module Gcs = Haf_gcs.Gcs
module Events = Haf_core.Events
module Policy = Haf_core.Policy
module Metrics = Haf_stats.Metrics
module F = Haf_core.Framework.Make (Haf_services.Vod)

let catalog = [ "movie:casablanca"; "movie:metropolis" ]

let () =
  let engine = Engine.create ~seed:7 () in
  let gcs = Gcs.create ~num_servers:2 engine in
  let events = Events.make_sink () in
  let policy = Policy.default in
  let mk_server p =
    F.Server.create gcs ~proc:p ~policy ~units:catalog ~catalog ~events
  in
  let _s0 = mk_server 0 and _s1 = mk_server 1 in
  let cproc = Gcs.add_client gcs in
  let client = F.Client.create gcs ~proc:cproc ~policy ~events in
  (* More viewers create enough load for the join to rebalance. *)
  let extras =
    List.init 5 (fun _ ->
        let p = Gcs.add_client gcs in
        F.Client.create gcs ~proc:p ~policy ~events)
  in
  Engine.run ~until:2. engine;
  List.iter
    (fun c ->
      ignore
        (F.Client.start_session c ~unit_id:"movie:metropolis" ~duration:40.
           ~request_interval:0.))
    extras;

  (* Discovery through the service group: the client only knows the
     abstract group name, never individual servers. *)
  let discovered = ref [] in
  F.Client.discover_units client (fun units -> discovered := units);
  Engine.run ~until:4. engine;
  Printf.printf "catalog discovered: [%s]\n" (String.concat "; " !discovered);

  let movie = List.hd !discovered in
  let sid = F.Client.start_session client ~unit_id:movie ~duration:40. ~request_interval:8. in
  Engine.run ~until:12. engine;

  (* Mid-movie, a third server comes up to alleviate load; with
     rebalancing on, some sessions migrate with an exact context
     handoff. *)
  let p2 = Gcs.add_server gcs in
  let _s2 = mk_server p2 in
  Printf.printf "t=%.1f: server %d brought up (load balancing)\n"
    (Engine.now engine) p2;
  Engine.run ~until:45. engine;

  let tl = Events.events events in
  let frames = Metrics.responses_received tl ~sid in
  Printf.printf "movie %s, session %s:\n" movie sid;
  Printf.printf "  frames delivered : %d\n" (List.length frames);
  Printf.printf "  duplicates       : %d\n" (Metrics.duplicates tl ~sid);
  Printf.printf "  rebalance moves  : %d\n"
    (Metrics.count_takeovers ~kind:Events.Rebalance tl);
  let seeks =
    List.length
      (List.filter
         (fun (_, e) ->
           match e with Events.Request_applied { role = Events.Primary; _ } -> true | _ -> false)
         tl)
  in
  Printf.printf "  context updates applied by primaries: %d\n" seeks;
  let sources = List.sort_uniq compare (List.map snd (Metrics.response_arrivals tl ~sid)) in
  Printf.printf "  served over time by servers: [%s]\n"
    (String.concat "; " (List.map string_of_int sources))
