(* Distance education: the paper's second motivating service.

     dune exec examples/education_lesson.exe

   A student studies a topic: fragments stream in, the student follows
   hyper-links and answers quizzes; a failing grade switches the session
   to detailed explanations.  Mid-lesson the serving node crashes — the
   backup takes over with the student's full request history (the
   intermediate synchronization level the paper adds over [2]). *)

module Engine = Haf_sim.Engine
module Gcs = Haf_gcs.Gcs
module Events = Haf_core.Events
module Policy = Haf_core.Policy
module Edu = Haf_services.Education
module F = Haf_core.Framework.Make (Haf_services.Education)

let () =
  let engine = Engine.create ~seed:99 () in
  let gcs = Gcs.create ~num_servers:3 engine in
  let events = Events.make_sink () in
  let policy = { Policy.default with n_backups = 1 } in
  let topic = "topic:distributed-systems:12" in
  let servers =
    List.map
      (fun p -> F.Server.create gcs ~proc:p ~policy ~units:[ topic ] ~catalog:[ topic ] ~events)
      (Gcs.servers gcs)
  in
  let cproc = Gcs.add_client gcs in
  let client = F.Client.create gcs ~proc:cproc ~policy ~events in
  Engine.run ~until:2. engine;
  (* The student's behaviour is scripted by the service's request
     generator: links and quiz answers. *)
  let sid = F.Client.start_session client ~unit_id:topic ~duration:45. ~request_interval:4. in
  Engine.run ~until:20. engine;
  let primary = List.find (fun s -> F.Server.is_primary_of s sid) servers in
  Printf.printf "t=%.1f: tutor node %d fails mid-lesson\n" (Engine.now engine)
    (F.Server.proc primary);
  F.Server.stop primary;
  Gcs.crash gcs (F.Server.proc primary);
  Events.emit events ~now:(Engine.now engine)
    (Events.Server_crashed { server = F.Server.proc primary });
  Engine.run ~until:55. engine;

  let tl = Events.events events in
  let module M = Haf_stats.Metrics in
  let quiz_answers =
    List.length
      (List.filter
         (fun (_, e) ->
           match e with
           | Events.Request_applied { session_id; role = Events.Primary; _ } ->
               session_id = sid
           | _ -> false)
         tl)
  in
  let lost, sent = M.requests_lost tl ~sid in
  Printf.printf "lesson session %s:\n" sid;
  Printf.printf "  fragments delivered : %d\n" (List.length (M.responses_received tl ~sid));
  Printf.printf "  student actions     : %d sent, %d applied by primaries, %d lost\n"
    sent quiz_answers lost;
  Printf.printf "  takeover used live backup context: %b\n"
    (List.exists
       (fun (_, e) ->
         match e with
         | Events.Takeover { had_live_context; kind = Events.Crash; _ } -> had_live_context
         | _ -> false)
       tl);
  if lost = 0 then
    print_endline
      "OK: no student action was lost across the crash (backups had every request)."
