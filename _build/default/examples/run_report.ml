(* Operator's view: run a chaotic scenario and print the full report —
   per-session delivery quality, fault log, global summary.

     dune exec examples/run_report.exe *)

module Scenario = Haf_experiments.Scenario
module R = Haf_experiments.Runner.Make (Haf_services.Vod)
module Policy = Haf_core.Policy

let () =
  let duration = 90. in
  let sc =
    {
      Scenario.default with
      seed = 77;
      n_servers = 4;
      n_units = 2;
      replication = 3;
      n_clients = 4;
      request_interval = 0.;  (* pure playback: delivery metrics stay exact *)
      session_duration = duration +. 30.;
      duration;
      policy = { Policy.default with n_backups = 1 };
    }
  in
  let tl, _ =
    R.run_scenario sc ~prepare:(fun w ->
        R.schedule_primary_kills w ~every:25. ~repair:8. ~start:15. ())
  in
  print_endline
    (Haf_stats.Report.render ~title:"VoD drill: 4 servers, periodic primary kills"
       ~horizon:duration tl)
