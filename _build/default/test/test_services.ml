(* Unit and property tests for the three paper services (VoD, distance
   education, refining search) and the synthetic experiment service. *)

module Vod = Haf_services.Vod
module Edu = Haf_services.Education
module Search = Haf_services.Search
module Syn = Haf_services.Synthetic

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* VoD *)

let test_vod_streams_in_order () =
  let ctx = Vod.initial_context ~unit_id:"movie:x" in
  let frames, ctx' = Vod.tick ctx in
  check Alcotest.int "batch size" Vod.frames_per_tick (List.length frames);
  check Alcotest.int "position advances" Vod.frames_per_tick ctx'.Vod.position;
  let ids = List.map Vod.response_id frames in
  check (Alcotest.list Alcotest.int) "frame ids 0.." [ 0; 1; 2; 3; 4 ] ids

let test_vod_seek () =
  let ctx = Vod.initial_context ~unit_id:"movie:x" in
  let ctx = Vod.apply_request ctx (Vod.Seek 1000) in
  let frames, _ = Vod.tick ctx in
  check Alcotest.int "first frame after seek" 1000 (Vod.response_id (List.hd frames))

let test_vod_seek_clamped () =
  let ctx = Vod.initial_context ~unit_id:"movie:short:100" in
  check Alcotest.int "length parsed" 100 ctx.Vod.length;
  let ctx = Vod.apply_request ctx (Vod.Seek 1_000_000) in
  check Alcotest.int "seek clamped to length" 100 ctx.Vod.position;
  let ctx = Vod.apply_request ctx (Vod.Seek (-5)) in
  check Alcotest.int "seek clamped to zero" 0 ctx.Vod.position

let test_vod_pause_resume () =
  let ctx = Vod.initial_context ~unit_id:"movie:x" in
  let ctx = Vod.apply_request ctx (Vod.Set_rate 0) in
  let frames, ctx' = Vod.tick ctx in
  check Alcotest.int "paused: nothing streams" 0 (List.length frames);
  check Alcotest.int "paused: no progress" 0 ctx'.Vod.position;
  let ctx = Vod.apply_request ctx (Vod.Set_rate Vod.frames_per_tick) in
  let frames, _ = Vod.tick ctx in
  check Alcotest.bool "resumed" true (frames <> [])

let test_vod_finishes () =
  let ctx = Vod.initial_context ~unit_id:"movie:tiny:8" in
  let rec play ctx n =
    if n = 0 then ctx
    else
      let _, ctx = Vod.tick ctx in
      play ctx (n - 1)
  in
  let ctx = play ctx 3 in
  check Alcotest.bool "movie over" true (Vod.session_finished ctx);
  let frames, _ = Vod.tick ctx in
  check Alcotest.int "credits: no frames" 0 (List.length frames)

let test_vod_key_frames () =
  let ctx = Vod.initial_context ~unit_id:"movie:x" in
  let rec collect ctx n acc =
    if n = 0 then List.rev acc
    else
      let frames, ctx = Vod.tick ctx in
      collect ctx (n - 1) (List.rev_append frames acc)
  in
  let frames = collect ctx 10 [] in
  List.iter
    (fun f ->
      let critical = Vod.response_critical f in
      let expected = Vod.response_id f mod Vod.gop = 0 in
      check Alcotest.bool "I-frame iff multiple of gop" expected critical)
    frames

let prop_vod_tick_progress =
  QCheck.Test.make ~name:"vod: tick never exceeds length, never reverses" ~count:200
    QCheck.(pair (int_bound 200) (int_bound 30))
    (fun (start, rate) ->
      let ctx = Vod.initial_context ~unit_id:"movie:t:150" in
      let ctx = Vod.apply_request ctx (Vod.Seek start) in
      let ctx = Vod.apply_request ctx (Vod.Set_rate rate) in
      let _, ctx' = Vod.tick ctx in
      ctx'.Vod.position >= ctx.Vod.position && ctx'.Vod.position <= 150)

(* ------------------------------------------------------------------ *)
(* Education *)

let test_edu_streams_fragments () =
  let ctx = Edu.initial_context ~unit_id:"topic:x:3" in
  let frag, ctx' = Edu.tick ctx in
  (match frag with
  | [ Edu.Fragment { obj = 0; part = 0; detailed = false } ] -> ()
  | _ -> Alcotest.fail "first fragment");
  check Alcotest.int "part advances" 1 ctx'.Edu.part

let test_edu_follow_link () =
  let ctx = Edu.initial_context ~unit_id:"topic:x:10" in
  let ctx = Edu.apply_request ctx (Edu.Follow_link 7) in
  check Alcotest.int "jumped" 7 ctx.Edu.current;
  check Alcotest.int "restarts object" 0 ctx.Edu.part;
  let ctx = Edu.apply_request ctx (Edu.Follow_link 99) in
  check Alcotest.int "clamped to topic" 9 ctx.Edu.current

let test_edu_quiz_changes_detail () =
  let ctx = Edu.initial_context ~unit_id:"topic:x:10" in
  let ctx = Edu.apply_request ctx (Edu.Quiz_answer { grade = 30 }) in
  check Alcotest.bool "poor grade -> detailed" true ctx.Edu.detailed;
  let frag, _ = Edu.tick ctx in
  (match frag with
  | [ Edu.Fragment { detailed = true; _ } ] -> ()
  | _ -> Alcotest.fail "detailed fragment expected");
  let ctx = Edu.apply_request ctx (Edu.Quiz_answer { grade = 90 }) in
  check Alcotest.bool "good grade -> terse" false ctx.Edu.detailed

let test_edu_completes_topic () =
  let ctx = Edu.initial_context ~unit_id:"topic:x:2" in
  let rec drive ctx n =
    if Edu.session_finished ctx then n
    else if n > 200 then Alcotest.fail "topic never completes"
    else
      let _, ctx = Edu.tick ctx in
      drive ctx (n + 1)
  in
  let ticks = drive ctx 0 in
  check Alcotest.int "2 objects x terse parts" (2 * Edu.parts_terse) ticks

let prop_edu_response_ids_unique =
  QCheck.Test.make ~name:"education: fragment ids unique within a topic run" ~count:50
    QCheck.(int_bound 1000)
    (fun _ ->
      let ctx = Edu.initial_context ~unit_id:"topic:x:4" in
      let rec collect ctx acc n =
        if Edu.session_finished ctx || n > 300 then acc
        else
          let frags, ctx = Edu.tick ctx in
          collect ctx (List.map Edu.response_id frags @ acc) (n + 1)
      in
      let ids = collect ctx [] 0 in
      List.length ids = List.length (List.sort_uniq compare ids))

(* ------------------------------------------------------------------ *)
(* Search *)

let test_search_filter_all () =
  let ctx = Search.initial_context ~unit_id:"corpus:x:30" in
  let result = Search.run_query ctx (Search.Filter { base = None; modulus = 3; residue = 0 }) in
  check (Alcotest.list Alcotest.int) "multiples of 3"
    [ 0; 3; 6; 9; 12; 15; 18; 21; 24; 27 ]
    result

let test_search_refines () =
  let ctx = Search.initial_context ~unit_id:"corpus:x:30" in
  let ctx = Search.apply_request ctx (Search.Filter { base = None; modulus = 3; residue = 0 }) in
  let result =
    Search.run_query ctx (Search.Filter { base = Some 1; modulus = 2; residue = 0 })
  in
  check (Alcotest.list Alcotest.int) "multiples of 6" [ 0; 6; 12; 18; 24 ] result

let test_search_intersect () =
  let ctx = Search.initial_context ~unit_id:"corpus:x:30" in
  let ctx = Search.apply_request ctx (Search.Filter { base = None; modulus = 2; residue = 0 }) in
  let ctx = Search.apply_request ctx (Search.Filter { base = None; modulus = 3; residue = 0 }) in
  let result = Search.run_query ctx (Search.Intersect (1, 2)) in
  check (Alcotest.list Alcotest.int) "intersection" [ 0; 6; 12; 18; 24 ] result

let test_search_bad_history_index () =
  let ctx = Search.initial_context ~unit_id:"corpus:x:30" in
  check (Alcotest.list Alcotest.int) "missing set -> empty" []
    (Search.run_query ctx (Search.Intersect (4, 9)))

let test_search_streams_hits () =
  let ctx = Search.initial_context ~unit_id:"corpus:x:30" in
  let hits0, _ = Search.tick ctx in
  check Alcotest.int "nothing before a query" 0 (List.length hits0);
  let ctx = Search.apply_request ctx (Search.Filter { base = None; modulus = 2; residue = 0 }) in
  let hits1, ctx = Search.tick ctx in
  check Alcotest.int "first batch" Search.hits_per_tick (List.length hits1);
  let hits2, _ = Search.tick ctx in
  let ids1 = List.map Search.response_id hits1 in
  let ids2 = List.map Search.response_id hits2 in
  check Alcotest.bool "no repeat across ticks" true
    (List.for_all (fun i -> not (List.mem i ids1)) ids2)

let prop_search_refinement_shrinks =
  QCheck.Test.make ~name:"search: refining never grows the result set" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 1 10))
    (fun (m1, m2) ->
      let ctx = Search.initial_context ~unit_id:"corpus:x:100" in
      let q1 = Search.Filter { base = None; modulus = m1; residue = 0 } in
      let ctx = Search.apply_request ctx q1 in
      let r1 = List.length (List.hd ctx.Search.history) in
      let q2 = Search.Filter { base = Some 1; modulus = m2; residue = 0 } in
      let r2 = List.length (Search.run_query ctx q2) in
      r2 <= r1)

(* ------------------------------------------------------------------ *)
(* Synthetic *)

let test_synthetic_stream () =
  let ctx = Syn.initial_context ~unit_id:"u" in
  let r1, ctx = Syn.tick ctx in
  let r2, _ = Syn.tick ctx in
  check (Alcotest.list Alcotest.int) "consecutive ids" [ 0; 1 ]
    (List.map Syn.response_id (r1 @ r2))

let test_synthetic_reposition () =
  let ctx = Syn.initial_context ~unit_id:"u" in
  let ctx = Syn.apply_request ctx (Syn.Reposition { seq = 3; to_ = 500 }) in
  check Alcotest.int "marker tracks max seq" 3 ctx.Syn.marker;
  let r, _ = Syn.tick ctx in
  check (Alcotest.list Alcotest.int) "repositioned" [ 500 ] (List.map Syn.response_id r)

let test_synthetic_critical_cadence () =
  check Alcotest.bool "0 critical" true (Syn.response_critical (Syn.Item { index = 0 }));
  check Alcotest.bool "10 critical" true (Syn.response_critical (Syn.Item { index = 10 }));
  check Alcotest.bool "7 not" false (Syn.response_critical (Syn.Item { index = 7 }))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "services.vod",
      [
        Alcotest.test_case "streams in order" `Quick test_vod_streams_in_order;
        Alcotest.test_case "seek" `Quick test_vod_seek;
        Alcotest.test_case "seek clamped" `Quick test_vod_seek_clamped;
        Alcotest.test_case "pause/resume" `Quick test_vod_pause_resume;
        Alcotest.test_case "finishes" `Quick test_vod_finishes;
        Alcotest.test_case "key frames" `Quick test_vod_key_frames;
      ]
      @ qsuite [ prop_vod_tick_progress ] );
    ( "services.education",
      [
        Alcotest.test_case "streams fragments" `Quick test_edu_streams_fragments;
        Alcotest.test_case "follow link" `Quick test_edu_follow_link;
        Alcotest.test_case "quiz changes detail" `Quick test_edu_quiz_changes_detail;
        Alcotest.test_case "completes topic" `Quick test_edu_completes_topic;
      ]
      @ qsuite [ prop_edu_response_ids_unique ] );
    ( "services.search",
      [
        Alcotest.test_case "filter all" `Quick test_search_filter_all;
        Alcotest.test_case "refines" `Quick test_search_refines;
        Alcotest.test_case "intersect" `Quick test_search_intersect;
        Alcotest.test_case "bad history index" `Quick test_search_bad_history_index;
        Alcotest.test_case "streams hits" `Quick test_search_streams_hits;
      ]
      @ qsuite [ prop_search_refinement_shrinks ] );
    ( "services.synthetic",
      [
        Alcotest.test_case "stream" `Quick test_synthetic_stream;
        Alcotest.test_case "reposition" `Quick test_synthetic_reposition;
        Alcotest.test_case "critical cadence" `Quick test_synthetic_critical_cadence;
      ] );
  ]
