(* Tests for the Section-4 risk models and the policy planner. *)

module Model = Haf_analysis.Model
module Adaptive = Haf_core.Adaptive
module Policy = Haf_core.Policy

let check = Alcotest.check

let test_loss_monotone_in_group_size () =
  let loss g = Model.update_loss_probability ~lambda:0.02 ~period:1. ~group_size:g in
  check Alcotest.bool "g=2 < g=1" true (loss 2. < loss 1.);
  check Alcotest.bool "g=3 < g=2" true (loss 3. < loss 2.)

let test_loss_monotone_in_period () =
  let loss p = Model.update_loss_probability ~lambda:0.02 ~period:p ~group_size:2. in
  check Alcotest.bool "longer period riskier" true (loss 4. > loss 0.5)

let test_loss_approx_matches_exact () =
  (* For small lambda*P the closed form and the (lambda P)^g/(g+1)
     approximation agree to a few percent. *)
  List.iter
    (fun g ->
      let exact = Model.update_loss_probability ~lambda:0.01 ~period:0.5 ~group_size:g in
      let approx =
        Model.update_loss_probability_approx ~lambda:0.01 ~period:0.5 ~group_size:g
      in
      if exact > 0. && Float.abs (approx -. exact) /. exact > 0.05 then
        Alcotest.failf "approx off at g=%g: %g vs %g" g approx exact)
    [ 1.; 2.; 3. ]

let test_loss_degenerate () =
  check (Alcotest.float 1e-12) "zero period" 0.
    (Model.update_loss_probability ~lambda:0.1 ~period:0. ~group_size:1.)

let test_unavailability_monotone () =
  let u k = Model.no_replica_unavailability ~lambda:0.02 ~repair:10. ~replicas:k in
  check Alcotest.bool "more replicas, less downtime" true (u 3 < u 2 && u 2 < u 1);
  check Alcotest.bool "bounded" true (u 1 < 1. && u 1 > 0.)

let test_duplicates_model () =
  check (Alcotest.float 1e-9) "half-second of frames at 25fps" 6.25
    (Model.expected_duplicates_per_takeover ~response_rate:25. ~period:0.5);
  check (Alcotest.float 1e-9) "skip mirror" 6.25
    (Model.expected_missing_per_takeover ~response_rate:25. ~period:0.5)

let test_takeover_latency_model () =
  let crash = Model.takeover_latency ~suspect_timeout:0.35 ~rtt:0.002 ~with_exchange:false in
  let join = Model.takeover_latency ~suspect_timeout:0. ~rtt:0.002 ~with_exchange:true in
  check Alcotest.bool "crash dominated by suspicion" true (crash > 0.35);
  check Alcotest.bool "join cheap" true (join < 0.01)

let test_load_models () =
  check (Alcotest.float 1e-9) "propagation fanout" 40.
    (Model.propagation_msgs_per_sec ~sessions_primary:10 ~period:1. ~group_size:5);
  check (Alcotest.float 1e-9) "backup load" 15.
    (Model.backup_request_load ~sessions_backup:30 ~request_rate:0.5)

(* ------------------------------------------------------------------ *)
(* Adaptive planner *)

let periods = [ 0.25; 0.5; 1.; 2.; 4. ]

let test_adaptive_meets_target () =
  List.iter
    (fun target ->
      match Adaptive.recommend ~lambda:0.01 ~target_loss:target ~periods ~max_backups:3 with
      | Some r ->
          check Alcotest.bool
            (Printf.sprintf "achieves %g" target)
            true
            (r.Adaptive.achieved_loss <= target)
      | None -> Alcotest.failf "no recommendation for %g" target)
    [ 1e-1; 1e-3; 1e-6 ]

let test_adaptive_prefers_fewer_backups () =
  (* A loose target must be met with zero backups. *)
  match Adaptive.recommend ~lambda:0.001 ~target_loss:0.01 ~periods ~max_backups:3 with
  | Some r -> check Alcotest.int "no backups needed" 0 r.Adaptive.backups
  | None -> Alcotest.fail "expected a recommendation"

let test_adaptive_impossible () =
  check Alcotest.bool "unreachable target" true
    (Adaptive.recommend ~lambda:0.5 ~target_loss:1e-30 ~periods ~max_backups:1 = None)

let test_adaptive_to_policy () =
  match Adaptive.recommend ~lambda:0.01 ~target_loss:1e-4 ~periods ~max_backups:3 with
  | Some r ->
      let p = Adaptive.to_policy r in
      check Alcotest.int "backups" r.Adaptive.backups p.Policy.n_backups;
      check (Alcotest.float 1e-9) "period" r.Adaptive.period p.Policy.propagation_period;
      check Alcotest.bool "valid policy" true (Result.is_ok (Policy.validate p))
  | None -> Alcotest.fail "expected a recommendation"

let prop_adaptive_tighter_targets_cost_more =
  QCheck.Test.make ~name:"adaptive: tighter target never needs fewer backups" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (a, b) ->
      let loose = 10. ** float_of_int (-Int.min a b) in
      let tight = 10. ** float_of_int (-Int.max a b) in
      match
        ( Adaptive.recommend ~lambda:0.02 ~target_loss:loose ~periods ~max_backups:5,
          Adaptive.recommend ~lambda:0.02 ~target_loss:tight ~periods ~max_backups:5 )
      with
      | Some rl, Some rt -> rt.Adaptive.backups >= rl.Adaptive.backups
      | _, None -> true  (* tight target unreachable: fine *)
      | None, Some _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "analysis.model",
      [
        Alcotest.test_case "loss monotone in group" `Quick test_loss_monotone_in_group_size;
        Alcotest.test_case "loss monotone in period" `Quick test_loss_monotone_in_period;
        Alcotest.test_case "approx matches exact" `Quick test_loss_approx_matches_exact;
        Alcotest.test_case "degenerate" `Quick test_loss_degenerate;
        Alcotest.test_case "unavailability monotone" `Quick test_unavailability_monotone;
        Alcotest.test_case "duplicates model" `Quick test_duplicates_model;
        Alcotest.test_case "takeover latency model" `Quick test_takeover_latency_model;
        Alcotest.test_case "load models" `Quick test_load_models;
      ] );
    ( "analysis.adaptive",
      [
        Alcotest.test_case "meets target" `Quick test_adaptive_meets_target;
        Alcotest.test_case "prefers fewer backups" `Quick test_adaptive_prefers_fewer_backups;
        Alcotest.test_case "impossible target" `Quick test_adaptive_impossible;
        Alcotest.test_case "to_policy" `Quick test_adaptive_to_policy;
      ]
      @ qsuite [ prop_adaptive_tighter_targets_cost_more ] );
  ]
