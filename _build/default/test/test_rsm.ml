(* Tests for the replicated state machine extension (paper Section 5
   future work): convergence under concurrency, crashes, partitions and
   merges, with the primary-partition (majority) rule. *)

module Engine = Haf_sim.Engine
module Gcs = Haf_gcs.Gcs

module Counter = struct
  type state = { total : int; entries : (int * int) list (* tag, value; newest first *) }

  type command = Add of { tag : int; value : int }

  let initial = { total = 0; entries = [] }

  let apply st (Add { tag; value }) =
    { total = st.total + value; entries = (tag, value) :: st.entries }
end

module R = Haf_core.Rsm.Make (Counter)

let check = Alcotest.check

let make ?(n = 3) ?(seed = 5) () =
  let engine = Engine.create ~seed () in
  let gcs = Gcs.create ~num_servers:n engine in
  let replicas =
    List.map (fun p -> R.create gcs ~proc:p ~group:"rsm" ~total:n ()) (Gcs.servers gcs)
  in
  (engine, gcs, replicas)

let states replicas = List.map (fun r -> (R.applied_count r, (R.state r).Counter.total)) replicas

let test_converges () =
  let engine, _, replicas = make () in
  Engine.run ~until:3. engine;
  List.iteri (fun i r -> R.submit r (Counter.Add { tag = i; value = i + 1 })) replicas;
  Engine.run ~until:6. engine;
  (match states replicas with
  | (3, 6) :: rest -> List.iter (fun s -> check (Alcotest.pair Alcotest.int Alcotest.int) "equal" (3, 6) s) rest
  | s :: _ -> Alcotest.failf "unexpected state (%d, %d)" (fst s) (snd s)
  | [] -> Alcotest.fail "no replicas");
  (* Identical entry orders, not just totals: total order at work. *)
  let orders = List.map (fun r -> (R.state r).Counter.entries) replicas in
  List.iter
    (fun o -> check Alcotest.bool "same order" true (o = List.hd orders))
    orders

let test_survives_crash () =
  let engine, gcs, replicas = make () in
  Engine.run ~until:3. engine;
  R.submit (List.hd replicas) (Counter.Add { tag = 0; value = 5 });
  Engine.run ~until:5. engine;
  Gcs.crash gcs 0;
  Engine.run ~until:9. engine;
  (* Two of three is still a majority: commands keep flowing. *)
  R.submit (List.nth replicas 1) (Counter.Add { tag = 1; value = 7 });
  Engine.run ~until:12. engine;
  List.iteri
    (fun i r ->
      if i > 0 then
        check (Alcotest.pair Alcotest.int Alcotest.int)
          (Printf.sprintf "replica %d" i)
          (2, 12)
          (R.applied_count r, (R.state r).Counter.total))
    replicas

let test_minority_blocks_then_catches_up () =
  let engine, gcs, replicas = make ~n:3 () in
  Engine.run ~until:3. engine;
  R.submit (List.hd replicas) (Counter.Add { tag = 0; value = 1 });
  Engine.run ~until:5. engine;
  (* Partition replica 2 away: it is a minority of one. *)
  Gcs.partition gcs [ [ 0; 1 ]; [ 2 ] ];
  Engine.run ~until:9. engine;
  let minority = List.nth replicas 2 in
  check Alcotest.bool "minority knows it" false (R.in_majority minority);
  R.submit minority (Counter.Add { tag = 2; value = 100 });
  Engine.run ~until:12. engine;
  check Alcotest.int "minority buffered, not applied" 1 (R.pending minority);
  check Alcotest.int "minority state unchanged" 1 (R.applied_count minority);
  (* Majority keeps going. *)
  R.submit (List.nth replicas 1) (Counter.Add { tag = 1; value = 10 });
  Engine.run ~until:15. engine;
  check Alcotest.int "majority applied" 2 (R.applied_count (List.hd replicas));
  (* Heal: the minority catches up AND its buffered command finally
     lands, everywhere. *)
  Gcs.heal gcs;
  Engine.run ~until:25. engine;
  List.iteri
    (fun i r ->
      check (Alcotest.pair Alcotest.int Alcotest.int)
        (Printf.sprintf "replica %d caught up" i)
        (3, 111)
        (R.applied_count r, (R.state r).Counter.total))
    replicas

let test_restart_syncs_state () =
  let engine, gcs, replicas = make () in
  Engine.run ~until:3. engine;
  R.submit (List.hd replicas) (Counter.Add { tag = 0; value = 42 });
  Engine.run ~until:5. engine;
  Gcs.crash gcs 2;
  Engine.run ~until:8. engine;
  R.submit (List.hd replicas) (Counter.Add { tag = 1; value = 8 });
  Engine.run ~until:10. engine;
  Gcs.restart gcs 2;
  let fresh = R.create gcs ~proc:2 ~group:"rsm" ~total:3 () in
  Engine.run ~until:18. engine;
  check (Alcotest.pair Alcotest.int Alcotest.int) "fresh replica adopted state" (2, 50)
    (R.applied_count fresh, (R.state fresh).Counter.total)

let prop_rsm_replicas_agree =
  QCheck.Test.make ~name:"rsm: random submissions and one crash still agree" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let engine, gcs, replicas = make ~n:4 ~seed:(seed + 1) () in
      let rng = Haf_sim.Rng.create (seed + 9) in
      Engine.run ~until:3. engine;
      for i = 1 to 12 do
        let at = 3. +. Haf_sim.Rng.float rng 4. in
        let who = Haf_sim.Rng.int rng 4 in
        ignore
          (Engine.schedule_at engine ~time:at (fun () ->
               if Gcs.alive gcs who then
                 R.submit (List.nth replicas who) (Counter.Add { tag = i; value = i })))
      done;
      let victim = Haf_sim.Rng.int rng 4 in
      ignore
        (Engine.schedule_at engine
           ~time:(4. +. Haf_sim.Rng.float rng 2.)
           (fun () -> Gcs.crash gcs victim));
      Engine.run ~until:20. engine;
      let survivors =
        List.filteri (fun i _ -> i <> victim) replicas
        |> List.map (fun r -> (R.applied_count r, (R.state r).Counter.entries))
      in
      List.for_all (fun s -> s = List.hd survivors) survivors)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "rsm",
      [
        Alcotest.test_case "converges" `Quick test_converges;
        Alcotest.test_case "survives crash" `Quick test_survives_crash;
        Alcotest.test_case "minority blocks then catches up" `Quick
          test_minority_blocks_then_catches_up;
        Alcotest.test_case "restart syncs state" `Quick test_restart_syncs_state;
      ]
      @ qsuite [ prop_rsm_replicas_agree ] );
  ]
