(* Tests for the availability manager (the paper's automated policy
   enforcement, Sections 1/5). *)

module Engine = Haf_sim.Engine
module Manager = Haf_core.Manager

let check = Alcotest.check

let h u r s = { Manager.h_unit = u; h_live_replicas = r; h_sessions = s }

(* ------------------------------------------------------------------ *)
(* The pure policy kernel *)

let test_evaluate_healthy () =
  check Alcotest.bool "nothing to do" true
    (Manager.evaluate ~min_replicas:2 ~max_load:10. [ h "a" 3 5; h "b" 2 10 ] = None)

let test_evaluate_under_replication () =
  match Manager.evaluate ~min_replicas:2 ~max_load:10. [ h "a" 3 5; h "b" 1 2 ] with
  | Some (Manager.Under_replicated "b") -> ()
  | _ -> Alcotest.fail "expected under-replicated b"

let test_evaluate_worst_first () =
  match
    Manager.evaluate ~min_replicas:3 ~max_load:10. [ h "a" 2 0; h "b" 0 0; h "c" 1 0 ]
  with
  | Some (Manager.Under_replicated "b") -> ()
  | _ -> Alcotest.fail "expected the zero-replica unit first"

let test_evaluate_overload () =
  match Manager.evaluate ~min_replicas:1 ~max_load:5. [ h "a" 2 8; h "b" 2 30 ] with
  | Some (Manager.Overloaded "b") -> ()
  | _ -> Alcotest.fail "expected the most overloaded unit"

let test_evaluate_replication_beats_load () =
  (* A unit below the floor wins over a massively overloaded one. *)
  match
    Manager.evaluate ~min_replicas:2 ~max_load:5. [ h "a" 1 0; h "b" 2 1000 ]
  with
  | Some (Manager.Under_replicated "a") -> ()
  | _ -> Alcotest.fail "replication first"

(* ------------------------------------------------------------------ *)
(* The control loop *)

let test_loop_spawns_and_cools_down () =
  let engine = Engine.create () in
  let replicas = ref 1 in
  let spawned = ref [] in
  let mgr =
    Manager.create ~engine ~check_period:1.0 ~min_replicas:3 ~max_load:100.
      ~cooldown:2.5
      ~observe:(fun () -> [ h "u" !replicas 0 ])
      ~spawn:(fun r ->
        spawned := (Engine.now engine, r) :: !spawned;
        incr replicas)
      ()
  in
  Engine.run ~until:10. engine;
  (* Needs two spawns (1 -> 3) at >= 2.5s apart, then quiet. *)
  check Alcotest.int "exactly two spawns" 2 (List.length !spawned);
  (match List.rev !spawned with
  | [ (t1, _); (t2, _) ] ->
      check Alcotest.bool "cooldown respected" true (t2 -. t1 >= 2.5)
  | _ -> ());
  check Alcotest.int "decision log matches" 2 (List.length (Manager.decisions mgr));
  Manager.stop mgr;
  Engine.run ~until:20. engine;
  check Alcotest.int "no spawns after stop" 2 (List.length !spawned)

let test_loop_quiet_when_healthy () =
  let engine = Engine.create () in
  let spawned = ref 0 in
  let _mgr =
    Manager.create ~engine ~check_period:1.0 ~min_replicas:2 ~max_load:10.
      ~observe:(fun () -> [ h "u" 3 5 ])
      ~spawn:(fun _ -> incr spawned)
      ()
  in
  Engine.run ~until:20. engine;
  check Alcotest.int "healthy cluster untouched" 0 !spawned

let suite =
  [
    ( "manager",
      [
        Alcotest.test_case "evaluate healthy" `Quick test_evaluate_healthy;
        Alcotest.test_case "evaluate under-replication" `Quick test_evaluate_under_replication;
        Alcotest.test_case "evaluate worst first" `Quick test_evaluate_worst_first;
        Alcotest.test_case "evaluate overload" `Quick test_evaluate_overload;
        Alcotest.test_case "replication beats load" `Quick test_evaluate_replication_beats_load;
        Alcotest.test_case "loop spawns with cooldown" `Quick test_loop_spawns_and_cools_down;
        Alcotest.test_case "loop quiet when healthy" `Quick test_loop_quiet_when_healthy;
      ] );
  ]
