(* Additional framework integration tests: the hybrid takeover policy,
   total-outage recovery via the client watchdog, propagation staleness,
   and the framework instantiated over the education and search
   services. *)

module Engine = Haf_sim.Engine
module Gcs = Haf_gcs.Gcs
module Events = Haf_core.Events
module Policy = Haf_core.Policy
module Metrics = Haf_stats.Metrics

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* VoD-based scenarios *)

module FV = Haf_core.Framework.Make (Haf_services.Vod)

type vod_world = {
  engine : Engine.t;
  gcs : Gcs.t;
  events : Events.sink;
  servers : (int * FV.Server.t) list;
  client : FV.Client.t;
}

let vod_setup ?(n = 3) ?(seed = 401) ?(policy = Policy.default) () =
  let engine = Engine.create ~seed () in
  let gcs = Gcs.create ~num_servers:n engine in
  let events = Events.make_sink () in
  let servers =
    List.map
      (fun p ->
        (p, FV.Server.create gcs ~proc:p ~policy ~units:[ "m" ] ~catalog:[ "m" ] ~events))
      (Gcs.servers gcs)
  in
  let cproc = Gcs.add_client gcs in
  let client = FV.Client.create gcs ~proc:cproc ~policy ~events in
  { engine; gcs; events; servers; client }

let crash w p =
  FV.Server.stop (List.assoc p w.servers);
  Gcs.crash w.gcs p;
  Events.emit w.events ~now:(Engine.now w.engine) (Events.Server_crashed { server = p })

let vod_primary w sid =
  List.find_map
    (fun (p, srv) ->
      if Gcs.alive w.gcs p && FV.Server.is_primary_of srv sid then Some p else None)
    w.servers

let test_hybrid_policy_critical_only () =
  (* Under Hybrid, the takeover fast-forwards but re-sends the critical
     (I) frames from the skipped window: the client may see duplicate
     I-frames, loses only P/B frames, and never loses an I-frame. *)
  let policy = { Policy.default with n_backups = 0; takeover = Policy.Hybrid } in
  let w = vod_setup ~policy ~seed:402 () in
  Engine.run ~until:3. w.engine;
  let sid = FV.Client.start_session w.client ~unit_id:"m" ~duration:40. ~request_interval:0. in
  Engine.run ~until:8. w.engine;
  crash w (Option.get (vod_primary w sid));
  Engine.run ~until:20. w.engine;
  let tl = Events.events w.events in
  check Alcotest.int "no missing I-frames" 0 (Metrics.missing ~critical:true tl ~sid);
  check Alcotest.int "no duplicate P/B frames" 0
    (Metrics.duplicates ~critical:false tl ~sid);
  check Alcotest.bool "some P/B frames skipped" true (Metrics.missing tl ~sid > 0)

let test_watchdog_recovers_total_outage () =
  (* Kill every replica: the unit database is gone (the paper's
     "availability is impossible" pattern).  Once servers restart, the
     client's silence watchdog re-establishes the session. *)
  let policy = { Policy.default with n_backups = 1; grant_timeout = 1. } in
  let w = vod_setup ~n:2 ~policy ~seed:403 () in
  Engine.run ~until:3. w.engine;
  let sid = FV.Client.start_session w.client ~unit_id:"m" ~duration:60. ~request_interval:0. in
  Engine.run ~until:8. w.engine;
  crash w 0;
  crash w 1;
  Engine.run ~until:12. w.engine;
  check Alcotest.bool "fully dark" true (vod_primary w sid = None);
  (* Both servers come back empty. *)
  List.iter
    (fun p ->
      Gcs.restart w.gcs p;
      ignore
        (FV.Server.create w.gcs ~proc:p ~policy ~units:[ "m" ] ~catalog:[ "m" ]
           ~events:w.events))
    [ 0; 1 ];
  Engine.run ~until:30. w.engine;
  let tl = Events.events w.events in
  let late =
    List.filter (fun (at, _, _) -> at > 15.) (Metrics.responses_received tl ~sid)
  in
  check Alcotest.bool "stream resumed after total outage" true (List.length late > 20)

let test_propagation_cadence () =
  (* The primary must propagate once per period per session. *)
  let policy = { Policy.default with propagation_period = 0.5 } in
  let w = vod_setup ~policy ~seed:404 () in
  Engine.run ~until:3. w.engine;
  let sid = FV.Client.start_session w.client ~unit_id:"m" ~duration:40. ~request_interval:0. in
  ignore sid;
  Engine.run ~until:13. w.engine;
  let props = Metrics.count_propagations (Events.events w.events) in
  (* ~10 seconds of session at 2/s. *)
  check Alcotest.bool "propagation cadence" true (props >= 16 && props <= 22)

let test_backup_context_staleness_bounded () =
  (* The unit database's snapshot must never lag the primary by more
     than one propagation period (plus delivery): check the recorded
     req_seq of propagations tracks the requests. *)
  let policy = { Policy.default with n_backups = 1; propagation_period = 0.5 } in
  let w = vod_setup ~policy ~seed:405 () in
  Engine.run ~until:3. w.engine;
  let sid = FV.Client.start_session w.client ~unit_id:"m" ~duration:40. ~request_interval:1. in
  Engine.run ~until:20. w.engine;
  let tl = Events.events w.events in
  (* For every request applied by the primary, some propagation within
     the next 1.5 periods covers it. *)
  let applies =
    List.filter_map
      (fun (at, e) ->
        match e with
        | Events.Request_applied { session_id; seq; role = Events.Primary; _ }
          when session_id = sid ->
            Some (at, seq)
        | _ -> None)
      tl
  in
  check Alcotest.bool "some requests applied" true (applies <> []);
  List.iter
    (fun (at, seq) ->
      if at < 18. then
        let covered =
          List.exists
            (fun (pt, e) ->
              match e with
              | Events.Propagated { session_id; req_seq; _ } ->
                  session_id = sid && pt >= at && pt <= at +. 0.8 && req_seq >= seq
              | _ -> false)
            tl
        in
        if not covered then
          Alcotest.failf "request %d at %.2f not propagated within 0.8s" seq at)
    applies

(* ------------------------------------------------------------------ *)
(* The framework over the education service *)

module FE = Haf_core.Framework.Make (Haf_services.Education)

let test_education_service_end_to_end () =
  let engine = Engine.create ~seed:406 () in
  let gcs = Gcs.create ~num_servers:3 engine in
  let events = Events.make_sink () in
  let policy = { Policy.default with n_backups = 1 } in
  let topic = "topic:t:30" in
  let servers =
    List.map
      (fun p ->
        (p, FE.Server.create gcs ~proc:p ~policy ~units:[ topic ] ~catalog:[ topic ] ~events))
      (Gcs.servers gcs)
  in
  let cproc = Gcs.add_client gcs in
  let client = FE.Client.create gcs ~proc:cproc ~policy ~events in
  Engine.run ~until:3. engine;
  let sid = FE.Client.start_session client ~unit_id:topic ~duration:60. ~request_interval:3. in
  Engine.run ~until:10. engine;
  (* Crash the current primary; the lesson must continue. *)
  (match
     List.find_opt
       (fun (p, srv) -> Gcs.alive gcs p && FE.Server.is_primary_of srv sid)
       servers
   with
  | Some (p, srv) ->
      FE.Server.stop srv;
      Gcs.crash gcs p
  | None -> Alcotest.fail "no education primary");
  Engine.run ~until:25. engine;
  let tl = Events.events events in
  let frags = Metrics.responses_received tl ~sid in
  check Alcotest.bool "fragments flow after crash" true
    (List.exists (fun (at, _, _) -> at > 15.) frags)

let test_education_topic_completion_ends_session () =
  (* A small topic is fully delivered before the client would leave: the
     primary itself must end the session. *)
  let engine = Engine.create ~seed:408 () in
  let gcs = Gcs.create ~num_servers:2 engine in
  let events = Events.make_sink () in
  let policy = Policy.default in
  let topic = "topic:t:3" in
  let _servers =
    List.map
      (fun p ->
        FE.Server.create gcs ~proc:p ~policy ~units:[ topic ] ~catalog:[ topic ] ~events)
      (Gcs.servers gcs)
  in
  let cproc = Gcs.add_client gcs in
  let client = FE.Client.create gcs ~proc:cproc ~policy ~events in
  Engine.run ~until:2. engine;
  let sid = FE.Client.start_session client ~unit_id:topic ~duration:120. ~request_interval:0. in
  Engine.run ~until:30. engine;
  let tl = Events.events events in
  check Alcotest.bool "topic completion ends session" true
    (List.exists
       (fun (_, e) ->
         match e with Events.Session_ended { session_id } -> session_id = sid | _ -> false)
       tl)

(* ------------------------------------------------------------------ *)
(* The framework over the search service *)

module FS = Haf_core.Framework.Make (Haf_services.Search)

let test_search_service_end_to_end () =
  let engine = Engine.create ~seed:407 () in
  let gcs = Gcs.create ~num_servers:3 engine in
  let events = Events.make_sink () in
  let policy = { Policy.default with n_backups = 1 } in
  let corpus = "corpus:c:200" in
  let _servers =
    List.map
      (fun p ->
        FS.Server.create gcs ~proc:p ~policy ~units:[ corpus ] ~catalog:[ corpus ] ~events)
      (Gcs.servers gcs)
  in
  let cproc = Gcs.add_client gcs in
  let client = FS.Client.create gcs ~proc:cproc ~policy ~events in
  Engine.run ~until:3. engine;
  let sid = FS.Client.start_session client ~unit_id:corpus ~duration:30. ~request_interval:4. in
  Engine.run ~until:25. engine;
  let tl = Events.events events in
  let hits = Metrics.responses_received tl ~sid in
  check Alcotest.bool "queries produce hits" true (List.length hits > 5);
  let lost, sent = Metrics.requests_lost tl ~sid in
  check Alcotest.bool "queries were sent" true (sent > 2);
  check Alcotest.int "no queries lost without faults" 0 lost

let test_invalid_policy_rejected () =
  let engine = Engine.create ~seed:410 () in
  let gcs = Gcs.create ~num_servers:1 engine in
  let events = Events.make_sink () in
  Alcotest.check_raises "invalid policy"
    (Invalid_argument "Server.create: n_backups must be non-negative") (fun () ->
      ignore
        (FV.Server.create gcs ~proc:0
           ~policy:{ Policy.default with n_backups = -1 }
           ~units:[ "m" ] ~catalog:[ "m" ] ~events))

let test_server_without_units () =
  (* A pure service-group member (no replicas): it answers discovery but
     never serves sessions. *)
  let engine = Engine.create ~seed:411 () in
  let gcs = Gcs.create ~num_servers:2 engine in
  let events = Events.make_sink () in
  let policy = Policy.default in
  let _frontend =
    FV.Server.create gcs ~proc:0 ~policy ~units:[] ~catalog:[ "m" ] ~events
  in
  let storage =
    FV.Server.create gcs ~proc:1 ~policy ~units:[ "m" ] ~catalog:[ "m" ] ~events
  in
  let cproc = Gcs.add_client gcs in
  let client = FV.Client.create gcs ~proc:cproc ~policy ~events in
  Engine.run ~until:3. engine;
  let answer = ref [] in
  FV.Client.discover_units client (fun units -> answer := units);
  let sid = FV.Client.start_session client ~unit_id:"m" ~duration:20. ~request_interval:0. in
  Engine.run ~until:10. engine;
  check (Alcotest.list Alcotest.string) "frontend answers discovery" [ "m" ] !answer;
  check Alcotest.bool "replica serves the session" true
    (FV.Server.is_primary_of storage sid);
  check (Alcotest.list Alcotest.string) "frontend replicates nothing" []
    (FV.Server.units _frontend)

let test_add_server_mid_run () =
  (* A brand-new server process (fresh GCS node, fresh framework server)
     joins a running deployment: it must merge into the content group,
     receive the database by state exchange, and absorb load. *)
  let policy = { Policy.default with n_backups = 0; rebalance_on_join = true } in
  let w = vod_setup ~n:2 ~policy ~seed:409 () in
  Engine.run ~until:3. w.engine;
  (* Six sessions on two servers (3+3); with a third server the even
     share is ceil(6/3)=2, so each incumbent sheds one. *)
  let sids =
    List.init 6 (fun _ ->
        FV.Client.start_session w.client ~unit_id:"m" ~duration:60. ~request_interval:0.)
  in
  Engine.run ~until:10. w.engine;
  let newcomer = Gcs.add_server w.gcs in
  let srv =
    FV.Server.create w.gcs ~proc:newcomer ~policy ~units:[ "m" ] ~catalog:[ "m" ]
      ~events:w.events
  in
  Engine.run ~until:25. w.engine;
  (* The newcomer now holds the full database... *)
  (match FV.Server.db srv "m" with
  | Some db -> check Alcotest.int "db transferred" 6 (Haf_core.Unit_db.size db)
  | None -> Alcotest.fail "unit missing at newcomer");
  (* ...and serves its even share (cap = ceil(4/3) = 2, so >= 1). *)
  let mine = List.filter (fun sid -> FV.Server.is_primary_of srv sid) sids in
  check Alcotest.int "newcomer took its share" 2 (List.length mine);
  (* Migrations were hitless: no duplicate frames anywhere. *)
  List.iter
    (fun sid ->
      let ids = List.map fst (FV.Client.received w.client sid) in
      let dups = List.length ids - List.length (List.sort_uniq compare ids) in
      check Alcotest.int (Printf.sprintf "no dups for %s" sid) 0 dups)
    sids

(* ------------------------------------------------------------------ *)
(* Core safety under random chaos                                      *)

module Unit_db = Haf_core.Unit_db

let prop_consistency_under_chaos =
  (* THE framework safety property: after a random crash/restart schedule
     and a settling period, (a) the live content-group members hold
     identical unit databases, and (b) every surviving session has
     exactly one live self-believed primary. *)
  QCheck.Test.make ~name:"framework: replica consistency + unique primary under chaos"
    ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let policy = { Policy.default with n_backups = 1 } in
      let engine = Engine.create ~seed:(seed + 11) () in
      let gcs = Gcs.create ~num_servers:4 engine in
      let events = Events.make_sink () in
      let mk p =
        FV.Server.create gcs ~proc:p ~policy ~units:[ "m" ] ~catalog:[ "m" ] ~events
      in
      let servers = ref (List.map (fun p -> (p, mk p)) (Gcs.servers gcs)) in
      let cproc = Gcs.add_client gcs in
      let client = FV.Client.create gcs ~proc:cproc ~policy ~events in
      Engine.run ~until:3. engine;
      let sids =
        List.init 3 (fun _ ->
            FV.Client.start_session client ~unit_id:"m" ~duration:80. ~request_interval:2.)
      in
      (* Random crash/restart storm. *)
      let rng = Haf_sim.Rng.create (seed + 13) in
      for _ = 1 to 4 do
        let victim = Haf_sim.Rng.int rng 4 in
        let at = 5. +. Haf_sim.Rng.float rng 15. in
        ignore
          (Engine.schedule_at engine ~time:at (fun () ->
               match List.assoc_opt victim !servers with
               | Some srv when Gcs.alive gcs victim ->
                   FV.Server.stop srv;
                   Gcs.crash gcs victim
               | _ -> ()));
        ignore
          (Engine.schedule_at engine
             ~time:(at +. 3. +. Haf_sim.Rng.float rng 4.)
             (fun () ->
               if not (Gcs.alive gcs victim) then begin
                 Gcs.restart gcs victim;
                 servers := (victim, mk victim) :: List.remove_assoc victim !servers
               end))
      done;
      (* Long settle so all repairs and rebalances complete. *)
      Engine.run ~until:45. engine;
      let live =
        List.filter (fun (p, _) -> Gcs.alive gcs p) !servers
      in
      let dbs = List.filter_map (fun (_, srv) -> FV.Server.db srv "m") live in
      (* Assignments must agree exactly at any instant; snapshots may
         differ by at most the one propagation in flight when the probe
         lands (bounded staleness). *)
      let snap_req db sid =
        match Unit_db.find db sid with
        | Some { Unit_db.propagated = Some sn; _ } -> sn.Unit_db.snap_req_seq
        | Some { Unit_db.propagated = None; _ } | None -> -1
      in
      let dbs_equal =
        match dbs with
        | first :: rest ->
            List.for_all (fun db -> Unit_db.equal_assignments first db) rest
            && List.for_all
                 (fun sid ->
                   let reqs = List.map (fun db -> snap_req db sid) dbs in
                   List.fold_left Int.max (-1) reqs
                   - List.fold_left Int.min max_int reqs
                   <= 2)
                 (List.concat_map
                    (fun db ->
                      List.map (fun s -> s.Unit_db.session_id) (Unit_db.sessions db))
                    dbs
                 |> List.sort_uniq compare)
        | [] -> false
      in
      let unique_primary =
        List.for_all
          (fun sid ->
            let primaries =
              List.filter (fun (_, srv) -> FV.Server.is_primary_of srv sid) live
            in
            List.length primaries = 1)
          sids
      in
      dbs_equal && unique_primary)

let suite =
  [
    ( "framework.policies",
      [
        Alcotest.test_case "hybrid keeps I-frames" `Quick test_hybrid_policy_critical_only;
        Alcotest.test_case "watchdog total outage" `Quick test_watchdog_recovers_total_outage;
        Alcotest.test_case "propagation cadence" `Quick test_propagation_cadence;
        Alcotest.test_case "staleness bounded" `Quick test_backup_context_staleness_bounded;
        Alcotest.test_case "add server mid-run" `Quick test_add_server_mid_run;
        Alcotest.test_case "invalid policy rejected" `Quick test_invalid_policy_rejected;
        Alcotest.test_case "server without units" `Quick test_server_without_units;
      ] );
    ( "framework.safety",
      List.map QCheck_alcotest.to_alcotest [ prop_consistency_under_chaos ] );
    ( "framework.services",
      [
        Alcotest.test_case "education end-to-end" `Quick test_education_service_end_to_end;
        Alcotest.test_case "education completion" `Quick
          test_education_topic_completion_ends_session;
        Alcotest.test_case "search end-to-end" `Quick test_search_service_end_to_end;
      ] );
  ]
