test/test_framework_more.ml: Alcotest Haf_core Haf_gcs Haf_services Haf_sim Haf_stats Int List Option Printf QCheck QCheck_alcotest
