test/test_core.ml: Alcotest Haf_core List Printf QCheck QCheck_alcotest Result
