test/test_framework.ml: Alcotest Haf_core Haf_gcs Haf_services Haf_sim Hashtbl Int List Option Printf
