test/test_analysis.ml: Alcotest Float Haf_analysis Haf_core Int List Printf QCheck QCheck_alcotest Result
