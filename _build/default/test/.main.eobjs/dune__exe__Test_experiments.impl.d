test/test_experiments.ml: Alcotest Haf_core Haf_experiments Haf_services Haf_sim Haf_stats Hashtbl List Option Printf String
