test/main.mli:
