test/test_soak.ml: Alcotest Haf_core Haf_experiments Haf_gcs Haf_services Haf_sim Haf_stats List Printf
