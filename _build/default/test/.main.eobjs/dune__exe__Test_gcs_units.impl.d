test/test_gcs_units.ml: Alcotest Float Format Haf_gcs Haf_net Haf_sim Hashtbl List Printf QCheck QCheck_alcotest Result
