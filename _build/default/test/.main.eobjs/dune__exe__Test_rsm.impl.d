test/test_rsm.ml: Alcotest Haf_core Haf_gcs Haf_sim List Printf QCheck QCheck_alcotest
