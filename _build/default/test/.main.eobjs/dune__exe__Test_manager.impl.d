test/test_manager.ml: Alcotest Haf_core Haf_sim List
