test/test_gcs.ml: Alcotest Array Haf_gcs Haf_net Haf_sim List Printf QCheck QCheck_alcotest String
