test/test_services.ml: Alcotest Haf_services List QCheck QCheck_alcotest
