test/test_stats.ml: Alcotest Haf_core Haf_stats Int List Printf QCheck QCheck_alcotest String
