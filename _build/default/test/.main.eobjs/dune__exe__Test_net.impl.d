test/test_net.ml: Alcotest Haf_net Haf_sim List QCheck QCheck_alcotest String
