test/test_sim.ml: Alcotest Array Float Haf_sim Int List QCheck QCheck_alcotest
