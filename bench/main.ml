(* Benchmark harness.

   Part 1 regenerates every evaluation table (experiments E1..E15 — the
   paper's Section-4 analysis turned quantitative; see EXPERIMENTS.md for
   the paper-vs-measured discussion).  Part 2 runs bechamel
   microbenchmarks of the hot operations underneath: deterministic
   selection, unit-database maintenance, wire marshalling, the risk-model
   integral, the event engine and a whole in-simulation GCS multicast
   round.  Part 3 re-measures the stable-storage path and writes
   BENCH_store.json — store op latencies plus the E14 recovery tables in
   machine-readable form.  Part 4 measures the chaos/monitor harness
   itself — schedule generation, text roundtrip, ddmin shrinking, and
   the monitor's per-event observation overhead — and writes
   BENCH_chaos.json.  Part 5 exercises the real-time substrate
   (lib/net_unix): reliable-FIFO throughput and ping-pong latency of the
   unmodified Transport over actual UDP loopback sockets, with the
   per-node traffic table rendered through Netstats.  Part 6 runs the
   one-process engine scale bench (E12 machinery, every hot-path knob
   on) and writes BENCH_engine.json — simulated events/sec, client
   request rates, and the max population holding the takeover-latency
   ceiling. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Microbenchmark subjects                                              *)

let bench_selection =
  let prevs =
    List.init 100 (fun i ->
        {
          Haf_core.Selection.p_session_id = Printf.sprintf "s%03d" i;
          p_primary = (if i mod 7 = 0 then None else Some (i mod 5));
          p_backups = [ (i + 1) mod 5 ];
        })
  in
  Test.make ~name:"selection.assign (100 sessions, 5 members)"
    (Staged.stage (fun () ->
         ignore
           (Haf_core.Selection.assign ~n_backups:2 ~members:[ 0; 1; 2; 3; 4 ]
              ~rebalance:true prevs)))

let bench_unit_db =
  Test.make ~name:"unit_db add+propagate+export (20 sessions)"
    (Staged.stage (fun () ->
         let db = Haf_core.Unit_db.create ~unit_id:"u" () in
         for i = 0 to 19 do
           let sid = Printf.sprintf "s%02d" i in
           ignore (Haf_core.Unit_db.add_session db ~session_id:sid ~client:i ~started_at:0.);
           Haf_core.Unit_db.set_propagated db sid
             {
               Haf_core.Unit_db.snap_ctx = i;
               snap_req_seq = i;
               snap_applied = [ i ];
               snap_at = float_of_int i;
             }
         done;
         ignore (Haf_core.Unit_db.export db)))

let bench_db_merge =
  let export =
    let db = Haf_core.Unit_db.create ~unit_id:"u" () in
    for i = 0 to 49 do
      ignore
        (Haf_core.Unit_db.add_session db
           ~session_id:(Printf.sprintf "s%02d" i)
           ~client:i ~started_at:0.)
    done;
    Haf_core.Unit_db.export db
  in
  Test.make ~name:"unit_db state-exchange merge (3x50 sessions)"
    (Staged.stage (fun () ->
         let db = Haf_core.Unit_db.create ~unit_id:"u" () in
         Haf_core.Unit_db.replace_with_merge db [ export; export; export ]))

let bench_marshal =
  let payload = String.make 256 'x' in
  Test.make ~name:"wire marshal round-trip (data msg, 256B payload)"
    (Staged.stage (fun () ->
         let msg =
           Haf_gcs.Wire.Data
             {
               group = "session:c004-0";
               vid = { Haf_gcs.View.Id.epoch = 12; coord = 3 };
               seq = 42;
               entry =
                 {
                   uid = { origin = 1; incarnation = 77; serial = 1042 };
                   orig = 1;
                   payload;
                 };
             }
         in
         ignore (Haf_gcs.Wire.decode (Haf_gcs.Wire.encode msg))))

let bench_model =
  Test.make ~name:"risk model loss integral"
    (Staged.stage (fun () ->
         ignore
           (Haf_analysis.Model.update_loss_probability ~lambda:0.01 ~period:0.5
              ~group_size:3.)))

let bench_engine =
  Test.make ~name:"engine schedule+run 1000 events"
    (Staged.stage (fun () ->
         let e = Haf_sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Haf_sim.Engine.schedule e ~delay:(float_of_int i *. 0.001) ignore)
         done;
         Haf_sim.Engine.run e))

let bench_rng =
  Test.make ~name:"rng exponential sample"
    (let r = Haf_sim.Rng.create 1 in
     Staged.stage (fun () -> ignore (Haf_sim.Rng.exponential r ~mean:1.0)))

let bench_gcs_round =
  Test.make ~name:"gcs: 3-member group formation + 10 multicasts (full sim)"
    (Staged.stage (fun () ->
         let engine = Haf_sim.Engine.create ~seed:3 () in
         let gcs = Haf_gcs.Gcs.create ~num_servers:3 engine in
         List.iter (fun p -> Haf_gcs.Gcs.join gcs p "g") (Haf_gcs.Gcs.servers gcs);
         Haf_sim.Engine.run ~until:2. engine;
         for i = 1 to 10 do
           Haf_gcs.Gcs.multicast gcs 0 "g" (string_of_int i)
         done;
         Haf_sim.Engine.run ~until:3. engine))

let bench_metrics =
  let tl =
    let sink = Haf_core.Events.make_sink () in
    for i = 1 to 200 do
      Haf_core.Events.emit sink ~now:(float_of_int i)
        (Haf_core.Events.Response_received
           {
             client = 9;
             session_id = "s";
             id = i mod 150;
             critical = false;
             from_server = 0;
           })
    done;
    Haf_core.Events.events sink
  in
  Test.make ~name:"metrics duplicates+missing (200 events)"
    (Staged.stage (fun () ->
         ignore (Haf_stats.Metrics.duplicates tl ~sid:"s");
         ignore (Haf_stats.Metrics.missing tl ~sid:"s")))

let bench_framework_session =
  (* The whole stack end to end: 3 VoD servers form their groups, a
     client starts a session and streams for two simulated seconds. *)
  let module F = Haf_core.Framework.Make (Haf_services.Vod) in
  Test.make ~name:"framework: session start + 2s of streaming (full sim)"
    (Staged.stage (fun () ->
         let engine = Haf_sim.Engine.create ~seed:9 () in
         let gcs = Haf_gcs.Gcs.create ~num_servers:3 engine in
         let events = Haf_core.Events.make_sink () in
         let policy = Haf_core.Policy.default in
         List.iter
           (fun p ->
             ignore
               (F.Server.create gcs ~proc:p ~policy ~units:[ "m" ] ~catalog:[ "m" ]
                  ~events))
           (Haf_gcs.Gcs.servers gcs);
         let cp = Haf_gcs.Gcs.add_client gcs in
         let client = F.Client.create gcs ~proc:cp ~policy ~events in
         Haf_sim.Engine.run ~until:1. engine;
         ignore
           (F.Client.start_session client ~unit_id:"m" ~duration:10.
              ~request_interval:0.);
         Haf_sim.Engine.run ~until:3. engine))

(* ------------------------------------------------------------------ *)
(* Stable-storage subjects (lib/store)                                  *)

let store_quiet =
  {
    Haf_store.Store.default_config with
    snapshot_period = 1000.;
    sync_period = 1000.;
  }

let bench_store_log_sync =
  Test.make ~name:"store: log 100 x 64B + group commit (full sim)"
    (Staged.stage (fun () ->
         let engine = Haf_sim.Engine.create ~seed:1 () in
         let st = Haf_store.Store.create ~name:"b" store_quiet engine in
         let payload = String.make 64 'r' in
         for _ = 1 to 100 do
           Haf_store.Store.log st payload
         done;
         Haf_store.Store.sync st (fun ~ok:_ -> ());
         Haf_sim.Engine.run engine))

let bench_store_snapshot =
  Test.make ~name:"store: 8KiB snapshot + wal compaction (full sim)"
    (Staged.stage (fun () ->
         let engine = Haf_sim.Engine.create ~seed:1 () in
         let st = Haf_store.Store.create ~name:"b" store_quiet engine in
         for _ = 1 to 100 do
           Haf_store.Store.log st (String.make 64 'r')
         done;
         Haf_store.Store.sync st (fun ~ok:_ -> ());
         Haf_sim.Engine.run engine;
         Haf_store.Store.snapshot st (String.make 8192 's') (fun ~ok:_ -> ());
         Haf_sim.Engine.run engine))

let bench_store_recover =
  Test.make ~name:"store: crash + recover 100-record wal"
    (let engine = Haf_sim.Engine.create ~seed:1 () in
     let st = Haf_store.Store.create ~name:"b" store_quiet engine in
     for _ = 1 to 100 do
       Haf_store.Store.log st (String.make 64 'r')
     done;
     Haf_store.Store.sync st (fun ~ok:_ -> ());
     Haf_sim.Engine.run engine;
     Haf_store.Store.crash st;
     Staged.stage (fun () -> ignore (Haf_store.Store.recover st)))

let store_benches = [ bench_store_log_sync; bench_store_snapshot; bench_store_recover ]

(* ------------------------------------------------------------------ *)
(* Chaos & monitor subjects (lib/chaos, lib/monitor)                    *)

module Chaos = Haf_chaos.Chaos
module Monitor = Haf_monitor.Monitor

let bench_chaos_generate =
  Test.make ~name:"chaos: generate schedule (100s horizon, intensity 2)"
    (Staged.stage (fun () ->
         ignore
           (Chaos.generate ~seed:42 ~intensity:2.0 ~horizon:100. ~n_servers:5
              ~n_units:2 ())))

let chaos_sched =
  Chaos.generate ~seed:42 ~intensity:2.0 ~horizon:100. ~n_servers:5 ~n_units:2 ()

let bench_chaos_roundtrip =
  Test.make ~name:"chaos: schedule text roundtrip"
    (Staged.stage (fun () -> ignore (Chaos.of_string (Chaos.to_string chaos_sched))))

(* Pure predicate, so this times the ddmin search itself rather than
   the simulation replays it would drive in anger. *)
let shrink_core = (50.0, Chaos.Crash 1)

let shrink_failing cand = List.mem shrink_core cand

let shrink_input = chaos_sched @ [ shrink_core ]

let bench_chaos_shrink =
  Test.make
    ~name:
      (Printf.sprintf "chaos: ddmin shrink (%d ops, pure predicate)"
         (List.length shrink_input))
    (Staged.stage (fun () -> ignore (Chaos.shrink ~failing:shrink_failing shrink_input)))

(* The monitor's observation cost per event, over a representative mix:
   role changes, propagations (acked-loss bookkeeping), view notes
   (staleness clock resets) and the client-response firehose. *)
let monitor_bench_events = 1000

let bench_monitor_observe =
  Test.make
    ~name:
      (Printf.sprintf "monitor: observe %d events + pump (5 servers)"
         monitor_bench_events)
    (Staged.stage (fun () ->
         let engine = Haf_sim.Engine.create ~seed:1 () in
         let net = Haf_net.Network.create engine Haf_net.Network.default_config in
         let servers = List.init 5 (fun _ -> Haf_net.Network.add_node net) in
         let sink = Haf_core.Events.make_sink () in
         let mon =
           Monitor.create ~network:net ~servers ~policy:Haf_core.Policy.default
             ~gcs:Haf_gcs.Config.default ~events:sink ()
         in
         Haf_core.Events.emit sink ~now:0.
           (Haf_core.Events.Session_granted
              { client = 9; session_id = "s"; primary = 0 });
         for i = 1 to monitor_bench_events do
           let now = float_of_int i *. 0.01 in
           Haf_core.Events.emit sink ~now
             (match i mod 4 with
             | 0 ->
                 Haf_core.Events.Propagated
                   { server = 0; session_id = "s"; req_seq = i; applied = [ i ] }
             | 1 ->
                 Haf_core.Events.Response_received
                   {
                     client = 9;
                     session_id = "s";
                     id = i;
                     critical = false;
                     from_server = 0;
                   }
             | 2 ->
                 Haf_core.Events.Role_assumed
                   { server = 0; session_id = "s"; role = Haf_core.Events.Primary }
             | _ ->
                 Haf_core.Events.View_noted
                   {
                     server = 0;
                     group = Haf_core.Naming.content_group "u00";
                     members = [ 0; 1; 2 ];
                   })
         done;
         Monitor.pump mon ~now:11.;
         ignore (Monitor.violations mon)))

let chaos_benches =
  [ bench_chaos_generate; bench_chaos_roundtrip; bench_chaos_shrink; bench_monitor_observe ]

let microbenches =
  [
    bench_selection;
    bench_unit_db;
    bench_db_merge;
    bench_marshal;
    bench_model;
    bench_engine;
    bench_rng;
    bench_gcs_round;
    bench_framework_session;
    bench_metrics;
  ]

(* [(subject name, estimated ns/run)] — None when OLS cannot fit. *)
let estimate tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000)
      ~stabilize:true ()
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.fold
        (fun name raw acc ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> (name, Some t) :: acc
          | Some _ | None -> (name, None) :: acc)
        results [])
    tests

let pretty_ns t =
  if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
  else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
  else Printf.sprintf "%.0f ns" t

let print_estimates title ests =
  let table =
    Haf_stats.Table.create ~title
      ~columns:[ ("operation", Haf_stats.Table.Left); ("time/run", Haf_stats.Table.Right) ]
      ()
  in
  List.iter
    (fun (name, est) ->
      Haf_stats.Table.add_row table
        [ name; (match est with Some t -> pretty_ns t | None -> "n/a") ])
    ests;
  Haf_stats.Table.print Format.std_formatter table

(* ------------------------------------------------------------------ *)
(* BENCH_store.json: hand-rolled JSON (no json dependency) with the
   store op latencies and the E14 recovery tables (as escaped CSV). *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_store_json ~path store_ests =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"benchmark\": \"lib/store stable storage\",\n";
  Buffer.add_string b "  \"mode\": \"quick\",\n";
  Buffer.add_string b "  \"op_latency_ns\": {\n";
  List.iteri
    (fun i (name, est) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name)
           (match est with Some t -> Printf.sprintf "%.1f" t | None -> "null")
           (if i < List.length store_ests - 1 then "," else "")))
    store_ests;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"e14_recovery_tables_csv\": [\n";
  let tables = Haf_experiments.E14_recovery.run ~quick:true in
  List.iteri
    (fun i t ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\"%s\n"
           (json_escape (Haf_stats.Table.to_csv t))
           (if i < List.length tables - 1 then "," else "")))
    tables;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* ------------------------------------------------------------------ *)
(* BENCH_chaos.json: harness-cost numbers — chaos op latencies, the
   monitor's per-event overhead, and one concrete ddmin run. *)

let write_chaos_json ~path chaos_ests =
  let minimal, evals = Chaos.shrink ~failing:shrink_failing shrink_input in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"benchmark\": \"lib/chaos + lib/monitor harness\",\n";
  Buffer.add_string b "  \"mode\": \"quick\",\n";
  Buffer.add_string b "  \"op_latency_ns\": {\n";
  List.iteri
    (fun i (name, est) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name)
           (match est with Some t -> Printf.sprintf "%.1f" t | None -> "null")
           (if i < List.length chaos_ests - 1 then "," else "")))
    chaos_ests;
  Buffer.add_string b "  },\n";
  let observe_est =
    List.find_map
      (fun (name, est) ->
        if
          String.length name >= 7
          && String.sub name 0 7 = "monitor"
        then est
        else None)
      chaos_ests
  in
  Buffer.add_string b
    (Printf.sprintf "  \"monitor_ns_per_event\": %s,\n"
       (match observe_est with
       | Some t -> Printf.sprintf "%.1f" (t /. float_of_int monitor_bench_events)
       | None -> "null"));
  Buffer.add_string b "  \"shrink\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"ops_before\": %d,\n" (List.length shrink_input));
  Buffer.add_string b
    (Printf.sprintf "    \"ops_after\": %d,\n" (List.length minimal));
  Buffer.add_string b (Printf.sprintf "    \"failing_evals\": %d\n" evals);
  Buffer.add_string b "  }\n";
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* ------------------------------------------------------------------ *)
(* BENCH_stabilize.json: the self-stabilization claim in numbers — one
   hardened E18 corruption sweep (quick seeds, intensity 1.0) under the
   convergence oracle, reporting time-to-reconvergence percentiles and
   the audit/reset work the recovery took. *)

let write_stabilize_json ~path =
  let module E18 = Haf_experiments.E18_stabilize in
  let st = E18.bench_stats ~intensity:1.0 ~quick:true () in
  let oc = open_out path in
  output_string oc (E18.json_of_stats ~mode:"quick" ~intensity:1.0 st);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Part 5: the real-time substrate.  Not a bechamel subject — sockets
   and the select reactor do not fit a closed staged thunk — so this is
   a direct wall-clock measurement of the same Transport the sim
   benchmarks exercise, now over real UDP loopback. *)

let udp_loopback_bench () =
  let module Udp = Haf_net_unix.Udp in
  let module Sub = Haf_net.Substrate in
  let module Transport = Haf_net.Transport in
  let module Clock = Haf_net_unix.Clock in
  let u = Udp.create_local ~seed:7 ~base_port:7950 ~nodes:2 () in
  let sub = Udp.substrate u in
  ignore (sub.Sub.add_node ());
  ignore (sub.Sub.add_node ());
  let tr = Transport.create sub in
  let delivered = ref 0 in
  let last = ref "" in
  Transport.attach tr 1 (fun ~src:_ p ->
      incr delivered;
      last := p);
  Transport.attach tr 0 (fun ~src:_ p ->
      incr delivered;
      last := p);
  (* One-way throughput: a batch of payloads through the reliable-FIFO
     pipeline (seq/ack bookkeeping, cumulative acks, no loss). *)
  let n_batch = 5_000 in
  let payload = String.make 64 'x' in
  let t0 = Clock.now () in
  for _ = 1 to n_batch do
    Transport.send tr ~src:0 ~dst:1 payload
  done;
  let ok = Udp.run_until u ~timeout:30. (fun () -> !delivered = n_batch) in
  let batch_s = Clock.now () -. t0 in
  (* Ping-pong: one payload in flight at a time, so each round trip pays
     the full select-wakeup + recv + ack path twice. *)
  let n_pong = 500 in
  delivered := 0;
  let t0 = Clock.now () in
  let pong = ref true in
  for i = 1 to n_pong do
    let tag = string_of_int i in
    Transport.send tr ~src:0 ~dst:1 tag;
    pong := Udp.run_until u ~timeout:5. (fun () -> !last = tag) && !pong;
    Transport.send tr ~src:1 ~dst:0 tag;
    pong := Udp.run_until u ~timeout:5. (fun () -> !delivered = 2 * i) && !pong
  done;
  let pong_s = Clock.now () -. t0 in
  let table =
    Haf_stats.Table.create ~title:"UDP loopback (lib/net_unix, 64-byte payloads)"
      ~columns:
        [
          ("measure", Haf_stats.Table.Left);
          ("count", Haf_stats.Table.Right);
          ("seconds", Haf_stats.Table.Right);
          ("rate", Haf_stats.Table.Right);
        ]
      ()
  in
  Haf_stats.Table.add_row table
    [
      (if ok then "one-way throughput" else "one-way throughput (INCOMPLETE)");
      string_of_int n_batch;
      Printf.sprintf "%.3f" batch_s;
      Printf.sprintf "%.0f payloads/s" (float_of_int n_batch /. batch_s);
    ];
  Haf_stats.Table.add_row table
    [
      (if !pong then "ping-pong round trip" else "ping-pong (INCOMPLETE)");
      string_of_int n_pong;
      Printf.sprintf "%.3f" pong_s;
      Printf.sprintf "%.1f us/rtt" (1e6 *. pong_s /. float_of_int n_pong);
    ];
  Haf_stats.Table.print Format.std_formatter table;
  Haf_stats.Table.print Format.std_formatter
    (Haf_stats.Netstats.substrate_table sub);
  Haf_stats.Table.print Format.std_formatter
    (Haf_stats.Netstats.transport_table (Transport.stats tr));
  Udp.close u

let () =
  print_endline "=== Part 1: evaluation tables (experiments E1..E18, quick mode) ===";
  print_newline ();
  Haf_experiments.Registry.run_all ~quick:true Format.std_formatter;
  print_endline "=== Part 2: microbenchmarks ===";
  print_newline ();
  print_estimates "microbenchmarks (monotonic clock)" (estimate microbenches);
  print_endline "=== Part 3: stable storage (lib/store) ===";
  print_newline ();
  let store_ests = estimate store_benches in
  print_estimates "store microbenchmarks (monotonic clock)" store_ests;
  write_store_json ~path:"BENCH_store.json" store_ests;
  print_endline "wrote BENCH_store.json";
  print_endline "=== Part 4: chaos & monitor harness (lib/chaos, lib/monitor) ===";
  print_newline ();
  let chaos_ests = estimate chaos_benches in
  print_estimates "chaos/monitor microbenchmarks (monotonic clock)" chaos_ests;
  write_chaos_json ~path:"BENCH_chaos.json" chaos_ests;
  print_endline "wrote BENCH_chaos.json";
  write_stabilize_json ~path:"BENCH_stabilize.json";
  print_endline "wrote BENCH_stabilize.json";
  print_endline "=== Part 5: real UDP loopback substrate (lib/net_unix) ===";
  print_newline ();
  udp_loopback_bench ();
  print_endline "=== Part 6: engine scale (sharded hot paths, one process) ===";
  print_newline ();
  (* The full 10^5 ladder is the CLI's job (haf_experiments
     --engine-bench); the tracked artifact uses rungs that keep the
     whole bench run under a couple of minutes. *)
  let engine_table, engine_rungs =
    (* haf-lint: allow R1 — CPU clock injected from the binary for the
       cpu-s reporting column only; it never feeds the simulation. *)
    Haf_experiments.E12_scale.run_bench ~clock:Sys.time
      ~ladder:[ 1_000; 10_000 ] ()
  in
  Haf_stats.Table.print Format.std_formatter engine_table;
  (match engine_rungs with
  | [] -> ()
  | rungs ->
      Haf_stats.Table.print Format.std_formatter
        (Haf_experiments.E12_scale.profile_table (List.nth rungs (List.length rungs - 1))));
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Haf_experiments.E12_scale.json_of_bench engine_rungs);
  close_out oc;
  print_endline "wrote BENCH_engine.json";
  (* Throughput regression gate: compare each rung against the
     checked-in floor (with tolerance) and fail the bench run on a
     regression, so CI catches a slow engine even when every invariant
     holds. *)
  match Haf_experiments.E12_scale.below_floor engine_rungs with
  | [] -> ()
  | regressions ->
      List.iter
        (fun (s, rate, fl) ->
          Printf.printf
            "FLOOR REGRESSION: %d sessions ran at %.0f sim events/cpu-s, below \
             the tolerated floor %.0f\n"
            s rate fl)
        regressions;
      exit 1
